//! Dataflow ILP limits vs achieved IPC.
//!
//! The paper cites Wall's limits-of-ILP study when motivating register
//! requirements; this experiment computes the matching numbers for our
//! traces: the idealised dataflow-limited IPC of each benchmark
//! (unbounded, and with sliding windows approximating finite instruction
//! buffers), next to the IPC the simulated 4- and 8-way machines actually
//! achieve — i.e. how much of the available parallelism realistic
//! configurations harvest.

use crate::runner::{RunSpec, Scale, SimPool};
use crate::table::Table;
use rf_core::dataflow::analyze;
use rf_workload::{spec92, TraceGenerator};

/// One benchmark's row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Unbounded dataflow-limit IPC.
    pub limit: f64,
    /// Dataflow-limit IPC with a 64-entry sliding window.
    pub limit_w64: f64,
    /// Achieved commit IPC, 4-way machine.
    pub achieved4: f64,
    /// Achieved commit IPC, 8-way machine.
    pub achieved8: f64,
}

/// Computes the rows for all nine benchmarks. The achieved-IPC columns
/// are the Table 1 baseline points, batched through the shared pool and
/// cache (so after Table 1 has run they cost nothing).
pub fn rows(scale: &Scale) -> Vec<Row> {
    let profiles = spec92::all();
    let mut specs = Vec::new();
    for width in [4usize, 8] {
        for p in &profiles {
            specs.push(RunSpec::baseline(&p.name, width).commits(scale.commits));
        }
    }
    let stats = SimPool::from_env().run_many(&specs);
    let (four, eight) = stats.split_at(profiles.len());
    profiles
        .into_iter()
        .zip(four.iter().zip(eight))
        .map(|(p, (a4, a8))| {
            let n = scale.commits as usize;
            let trace: Vec<_> = TraceGenerator::new(&p, 12).take(n).collect();
            let limit = analyze(trace.iter().copied(), None);
            let limit_w64 = analyze(trace.iter().copied(), Some(64));
            Row {
                name: p.name,
                limit: limit.ipc(),
                limit_w64: limit_w64.ipc(),
                achieved4: a4.commit_ipc(),
                achieved8: a8.commit_ipc(),
            }
        })
        .collect()
}

/// Runs the dataflow-limit comparison and renders the report.
pub fn run(scale: &Scale) -> String {
    let mut t = Table::new(vec![
        "benchmark",
        "dataflow IPC",
        "window-64 IPC",
        "4-way IPC",
        "8-way IPC",
        "harvest@8 %",
    ]);
    for r in rows(scale) {
        t.row(vec![
            r.name,
            format!("{:.1}", r.limit),
            format!("{:.1}", r.limit_w64),
            format!("{:.2}", r.achieved4),
            format!("{:.2}", r.achieved8),
            format!("{:.0}", 100.0 * r.achieved8 / r.limit_w64.max(1e-9)),
        ]);
    }
    format!(
        "Dataflow ILP limits vs achieved IPC (perfect prediction + memory,\n\
         unlimited units/registers for the limits; baseline machines for\n\
         the achieved columns).\n\
         Note: the window-64 limit uses a *completion* window (instruction\n\
         i waits for i-64 to finish), which is stricter than a 64-entry\n\
         dispatch queue that frees entries at issue — so harvest can\n\
         exceed 100%.\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limits_dominate_achieved_ipc() {
        for r in rows(&Scale { commits: 5_000 }) {
            assert!(
                r.limit + 1e-9 >= r.limit_w64,
                "{}: window can only reduce the limit",
                r.name
            );
            assert!(
                r.limit_w64 * 1.05 >= r.achieved4,
                "{}: 4-way {} exceeds window-64 limit {}",
                r.name,
                r.achieved4,
                r.limit_w64
            );
        }
    }
}
