//! Figure 8: cumulative integer-register usage histogram for `compress`
//! under the three cache organisations (precise exceptions, 4-way issue,
//! 32-entry dispatch queue, 2048 registers).
//!
//! The paper's reading: the lockup-free cache needs more registers and
//! spreads them over a wider range (overlapped misses keep more loads and
//! dependents live); the lockup cache concentrates liveness in a narrow
//! band (in effect serialising around misses); the perfect cache sits in
//! between in shape but lowest in register count.

use crate::aggregate::coverage_curve;
use crate::runner::{simulate_cached, RunSpec, Scale, SimPool};
use crate::table::Table;
use rf_core::{LiveModel, SimStats};
use rf_isa::RegClass;
use rf_mem::CacheOrg;
use std::sync::Arc;

/// X-axis sample points, as in the paper's Figure 8.
pub const SAMPLE_POINTS: &[usize] = &[30, 40, 50, 60, 70, 80, 90, 100, 120, 150];

/// Runs compress under one cache organisation (via the run cache — the
/// lockup-free point is the baseline Table 1 also simulates).
pub fn simulate_compress(org: CacheOrg, scale: &Scale) -> Arc<SimStats> {
    simulate_cached(&RunSpec::baseline("compress", 4).cache(org).commits(scale.commits))
}

/// Runs Figure 8 and renders the report.
pub fn run(scale: &Scale) -> String {
    let orgs = [CacheOrg::Perfect, CacheOrg::LockupFree, CacheOrg::Lockup];
    let specs: Vec<RunSpec> = orgs
        .iter()
        .map(|&org| RunSpec::baseline("compress", 4).cache(org).commits(scale.commits))
        .collect();
    let curves: Vec<Vec<f64>> = SimPool::from_env()
        .run_many(&specs)
        .iter()
        .map(|s| coverage_curve(&s.live_distribution(RegClass::Int, LiveModel::Precise)))
        .collect();
    let at = |c: &[f64], p: usize| {
        c.get(p).copied().unwrap_or_else(|| c.last().copied().unwrap_or(0.0))
    };
    let mut t = Table::new(vec!["regs", "perfect%", "lockup-free%", "lockup%"]);
    for &p in SAMPLE_POINTS {
        t.row(vec![
            p.to_string(),
            format!("{:.1}", at(&curves[0], p)),
            format!("{:.1}", at(&curves[1], p)),
            format!("{:.1}", at(&curves[2], p)),
        ]);
    }
    format!(
        "Figure 8: compress integer-register coverage by cache organisation\n\
         (precise exceptions, 4-way issue, dq 32, 2048 registers)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lockup_free_needs_more_registers_than_perfect() {
        let scale = Scale { commits: 15_000 };
        let perfect = simulate_compress(CacheOrg::Perfect, &scale);
        let lockup_free = simulate_compress(CacheOrg::LockupFree, &scale);
        let p90 = perfect.live_percentile(RegClass::Int, LiveModel::Precise, 90.0);
        let lf90 = lockup_free.live_percentile(RegClass::Int, LiveModel::Precise, 90.0);
        assert!(
            lf90 >= p90,
            "lockup-free 90th pct {lf90} should be at least perfect's {p90}"
        );
    }
}
