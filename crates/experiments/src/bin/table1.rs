//! Regenerates the paper's table1 report. Pass a commit budget as the first
//! argument or set RF_COMMITS (default 200000).

fn main() {
    let scale = rf_experiments::runner::Scale {
        commits: std::env::args()
            .nth(1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| rf_experiments::runner::Scale::from_env().commits),
    };
    println!("{}", rf_experiments::table1::run(&scale));
}
