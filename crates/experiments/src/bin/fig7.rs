//! Regenerates the paper's fig7 report. Pass a commit budget as the
//! first argument or set RF_COMMITS (default 200000); `--help` prints
//! the full contract. Malformed arguments or environment exit 2, a
//! failing harness exits 1.

fn main() -> std::process::ExitCode {
    rf_experiments::runner::harness_main("fig7", rf_experiments::fig7::run)
}
