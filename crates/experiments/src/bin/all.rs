//! Runs every table/figure harness and writes reports under `results/`,
//! plus a `results/BENCH_suite.json` timing report for the whole suite.
//!
//! Every invocation also appends one schema-versioned record to the
//! run-history ledger `results/history/suite.jsonl` (and copies it to
//! `BENCH_history.jsonl` at the repo root): config knobs, per-harness
//! timings with phase breakdowns, traced-probe percentiles, and the
//! headline numbers extracted from each figure report. `rfstudy report`
//! reads that ledger.
//!
//! Pass a commit budget as the first argument or set RF_COMMITS
//! (default 200000). RF_JOBS sets the number of parallel simulation
//! workers (default: all cores); RF_CACHE=0 disables the shared run
//! cache; RF_LOG=text|json emits a structured progress line on stderr as
//! each harness finishes plus a final suite-summary record.

use rf_experiments::bench::{SanitizerStatus, SuiteBench};
use rf_experiments::runner::Scale;
use rf_obs::fidelity;
use rf_obs::ledger;
use std::fs;
use std::path::Path;

/// Commit budget of the per-harness traced probes (small: each probe is
/// one extra observed simulation whose stall attribution and latency
/// percentiles annotate the harness in `BENCH_suite.json`).
const PROBE_COMMITS: u64 = 5_000;

fn main() -> std::io::Result<()> {
    let scale = Scale {
        commits: std::env::args()
            .nth(1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| Scale::from_env().commits),
    };
    fs::create_dir_all("results")?;
    type Harness = fn(&Scale) -> String;
    // Each harness carries a representative benchmark for its traced
    // probe: FP-heavy figures probe an FP benchmark, integer-focused
    // ones an integer benchmark.
    let experiments: Vec<(&str, Harness, &str)> = vec![
        ("table1", rf_experiments::table1::run, "compress"),
        ("fig3", rf_experiments::fig3::run, "espresso"),
        ("fig4", rf_experiments::fig4::run, "tomcatv"),
        ("fig5", rf_experiments::fig5::run, "su2cor"),
        ("fig6", rf_experiments::fig6::run, "tomcatv"),
        ("fig7", rf_experiments::fig7::run, "doduc"),
        ("fig8", rf_experiments::fig8::run, "su2cor"),
        ("fig10", rf_experiments::fig10::run, "gcc1"),
        ("ablation", rf_experiments::ablation::run, "mdljdp2"),
        ("extensions", rf_experiments::extensions::run, "espresso"),
        ("sensitivity", rf_experiments::sensitivity::run, "ora"),
        ("dataflow", rf_experiments::dataflow::run, "mdljsp2"),
    ];
    let mut bench = SuiteBench::start(scale.commits);
    let mut headlines: Vec<(String, f64)> = Vec::new();
    for (name, run, probe_bench) in experiments {
        let report = bench.time(name, || run(&scale));
        bench.attach_probe(probe_bench, PROBE_COMMITS.min(scale.commits));
        headlines.extend(
            fidelity::extract_headlines(name, &report)
                .into_iter()
                .map(|h| (h.id.to_owned(), h.value)),
        );
        let path = format!("results/{name}.txt");
        fs::write(&path, &report)?;
        let timed = bench.entries().last().expect("just recorded");
        println!(
            "== {name} ({:.1}s, {} sims) -> {path}\n{report}",
            timed.seconds, timed.sims
        );
    }
    let speedup = bench.measure_speedup(scale.commits.min(10_000));
    println!("parallel speedup vs 1 worker: {speedup:.2}x");
    // Sanitized probes: invariant-checked simulations over a small corner
    // of the configuration space, so every suite report certifies the
    // rename/freeing protocol of the binary that produced it.
    let probe = rf_check::suite_probe(scale.commits.min(2_000));
    bench.set_sanitizer(SanitizerStatus {
        probes: probe.probes,
        events: probe.events,
        violations: probe.violations,
    });
    println!("sanitizer: {} ({} probes, {} events)", probe.status(), probe.probes, probe.events);
    let json = bench.to_json();
    fs::write("results/BENCH_suite.json", &json)?;
    println!("== benchmark -> results/BENCH_suite.json\n{json}");
    // Append this run to the history ledger and mirror the record at the
    // repo root, so the perf/fidelity trajectory survives the overwrite
    // of BENCH_suite.json.
    let line = bench.to_ledger_record(headlines).to_line();
    ledger::append_line(Path::new(ledger::LEDGER_PATH), &line)?;
    ledger::write_latest(Path::new(ledger::LATEST_PATH), &line)?;
    println!(
        "== ledger record appended -> {} (latest copied to {})",
        ledger::LEDGER_PATH,
        ledger::LATEST_PATH
    );
    if let Some(summary) = bench.suite_summary_line() {
        eprintln!("{summary}");
    }
    Ok(())
}
