//! Runs every table/figure harness and writes reports under `results/`.
//!
//! Pass a commit budget as the first argument or set RF_COMMITS
//! (default 200000).

use rf_experiments::runner::Scale;
use std::fs;
use std::time::Instant;

fn main() -> std::io::Result<()> {
    let scale = Scale {
        commits: std::env::args()
            .nth(1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| Scale::from_env().commits),
    };
    fs::create_dir_all("results")?;
    type Harness = fn(&Scale) -> String;
    let experiments: Vec<(&str, Harness)> = vec![
        ("table1", rf_experiments::table1::run),
        ("fig3", rf_experiments::fig3::run),
        ("fig4", rf_experiments::fig4::run),
        ("fig5", rf_experiments::fig5::run),
        ("fig6", rf_experiments::fig6::run),
        ("fig7", rf_experiments::fig7::run),
        ("fig8", rf_experiments::fig8::run),
        ("fig10", rf_experiments::fig10::run),
        ("ablation", rf_experiments::ablation::run),
        ("extensions", rf_experiments::extensions::run),
        ("sensitivity", rf_experiments::sensitivity::run),
        ("dataflow", rf_experiments::dataflow::run),
    ];
    for (name, run) in experiments {
        let start = Instant::now();
        let report = run(&scale);
        let path = format!("results/{name}.txt");
        fs::write(&path, &report)?;
        println!("== {name} ({:.1}s) -> {path}\n{report}", start.elapsed().as_secs_f64());
    }
    Ok(())
}
