//! Runs every table/figure harness and writes reports under `results/`,
//! plus a `results/BENCH_suite.json` timing report for the whole suite.
//!
//! Every invocation also appends one schema-versioned record to the
//! run-history ledger `results/history/suite.jsonl` — the **authoritative**
//! history file — and then mirrors that record to `BENCH_history.jsonl`
//! at the repo root. A mirror failure is reported but non-fatal: the two
//! files can disagree only in the direction of the mirror being stale,
//! and `rfstudy report` reads the authoritative ledger.
//!
//! # Arguments (strict)
//!
//! ```text
//! all [COMMITS] [--deadline-secs N] [--cache-cap N] [--help]
//! ```
//!
//! `COMMITS` is the per-simulation commit budget (default: `RF_COMMITS`
//! or 200000). `--deadline-secs N` bounds every simulation batch to `N`
//! wall seconds (cooperative cancellation; overrunning specs fail, the
//! suite keeps going). `--cache-cap N` bounds the shared run cache to
//! `N` entries (LRU eviction). A malformed argument or environment
//! variable exits 2 with a message — it no longer silently launches a
//! full-scale run — and `--help` prints usage instead of simulating.
//!
//! # Fault tolerance
//!
//! A harness that panics loses only itself: its bench entry and ledger
//! record carry `"error": ...`, its report file is not written, the
//! remaining harnesses still run and write their reports, and the
//! process exits 1 with a suite-level failure summary.
//!
//! RF_JOBS sets the number of parallel simulation workers (default: all
//! cores); RF_CACHE=0/off/false/no disables the shared run cache;
//! RF_CACHE_CAP bounds it; RF_STORE=1 layers the durable on-disk run
//! store under the cache (warm re-runs replay results byte-identically
//! from `RF_STORE_DIR`); RF_LOG=text|json emits a structured progress
//! line on stderr as each harness finishes plus a final suite-summary
//! record. With the `fault-probe` feature, RF_FAULT=<harness> injects a
//! panicking simulation into that harness (the CI smoke path).

use rf_experiments::bench::{SanitizerStatus, SuiteBench};
use rf_experiments::runner::{self, Scale};
use rf_obs::fidelity;
use rf_obs::ledger;
use std::fs;
use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

/// Commit budget of the per-harness traced probes (small: each probe is
/// one extra observed simulation whose stall attribution and latency
/// percentiles annotate the harness in `BENCH_suite.json`).
const PROBE_COMMITS: u64 = 5_000;

const USAGE: &str = "usage: all [COMMITS] [--deadline-secs N] [--cache-cap N] [--help]

Runs every table/figure harness, writes reports under results/, appends
one record to the run-history ledger results/history/suite.jsonl
(authoritative; mirrored to BENCH_history.jsonl), and exits nonzero if
any harness failed.

arguments:
  COMMITS             committed instructions per simulation
                      (default: RF_COMMITS or 200000)
  --deadline-secs N   wall-clock budget per simulation batch; overrunning
                      specs fail with a deadline error, the suite goes on
  --cache-cap N       bound the shared run cache to N entries (LRU)

environment:
  RF_COMMITS      default commit budget
  RF_JOBS         parallel simulation workers (default: all cores)
  RF_CACHE        0/off/false/no disables the shared run cache
  RF_CACHE_CAP    same as --cache-cap
  RF_STORE        1/on/true/yes enables the durable content-addressed
                  run store: executed results persist under RF_STORE_DIR
                  and warm re-runs are served from disk byte-identically
  RF_STORE_DIR    store directory (default: results/store)
  RF_LOG          text|json progress lines on stderr
  RF_PREFILTER    1/on/true/yes lets the rf-model analytic prefilter
                  prune saturated register-sweep points (substituted
                  estimates; pruned counts land in the reports)
  RF_PROFILE      1/on/true/yes embeds rf-prof self-profiles in the
                  suite report and ledger record
  RF_TELEMETRY    1/on/true/yes streams live counter snapshots to
                  results/telemetry/live.jsonl while the suite runs
                  (attach with `rfstudy top`); off-runs are unaffected
  RF_TELEMETRY_INTERVAL_MS
                  sampler period in milliseconds (default 250)
  RF_METRICS_ADDR host:port for a live Prometheus /metrics endpoint
                  (port 0 picks a free port; bound address is printed)";

/// Parsed command line: commit budget override and batch deadline.
struct Args {
    commits: Option<u64>,
    deadline_secs: Option<f64>,
}

/// Parses the strict argument contract. `Ok(None)` means `--help` was
/// printed; `Err` carries the usage-error message (exit 2).
fn parse_args() -> Result<Option<Args>, String> {
    let mut commits = None;
    let mut deadline_secs = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--deadline-secs" => {
                let raw = args
                    .next()
                    .ok_or_else(|| "--deadline-secs needs a value".to_owned())?;
                let secs: f64 = raw
                    .parse()
                    .ok()
                    .filter(|s: &f64| s.is_finite() && *s > 0.0)
                    .ok_or_else(|| {
                        format!("--deadline-secs {raw:?} is not a positive number of seconds")
                    })?;
                deadline_secs = Some(secs);
            }
            "--cache-cap" => {
                let raw =
                    args.next().ok_or_else(|| "--cache-cap needs a value".to_owned())?;
                let cap: u64 = raw
                    .parse()
                    .ok()
                    .filter(|c: &u64| *c > 0)
                    .ok_or_else(|| format!("--cache-cap {raw:?} is not a positive integer"))?;
                // The cache reads RF_CACHE_CAP once on first use; set it
                // now, before any simulation touches the global cache
                // (startup is single-threaded).
                std::env::set_var("RF_CACHE_CAP", cap.to_string());
            }
            _ if arg.starts_with('-') => {
                return Err(format!("unknown option {arg:?}"));
            }
            _ => {
                if commits.is_some() {
                    return Err(format!("unexpected argument {arg:?}"));
                }
                let budget: u64 = arg.parse().map_err(|_| {
                    format!("commit budget {arg:?} is not a non-negative integer")
                })?;
                commits = Some(budget);
            }
        }
    }
    Ok(Some(Args { commits, deadline_secs }))
}

/// The harness name RF_FAULT injects a panicking simulation into
/// (`fault-probe` builds only; elsewhere the variable is ignored).
#[cfg(feature = "fault-probe")]
fn fault_target() -> Option<String> {
    std::env::var("RF_FAULT").ok().filter(|v| !v.is_empty())
}

#[cfg(not(feature = "fault-probe"))]
fn fault_target() -> Option<String> {
    None
}

/// Cross-validates the analytic model against the simulator on the
/// nine 4-wide baselines at the suite's commit budget and returns the
/// error telemetry for the ledger, so `rfstudy report` can flag drift
/// when simulator changes leave the model's fitted constants behind.
///
/// The baselines were already simulated by the figure harnesses, so the
/// probe *peeks* at the shared run cache instead of re-running them:
/// a non-counting read that leaves the cache hit/miss/eviction totals —
/// which must reconcile exactly with the final live-telemetry snapshot —
/// untouched. Baselines absent from the cache (or the whole probe,
/// under `RF_CACHE=0`) are skipped; `None` if nothing was comparable.
fn model_error_probe(commits: u64) -> Option<ledger::ModelErrorRecord> {
    use rf_experiments::runner::{RunCache, RunSpec};
    if commits == 0 {
        return None;
    }
    let specs: Vec<RunSpec> = rf_experiments::aggregate::all_names()
        .iter()
        .map(|n| RunSpec::baseline(n, 4).commits(commits))
        .collect();
    let cache = RunCache::global();
    let (mut sum, mut n, mut worst, mut worst_config) = (0.0f64, 0u64, 0.0f64, String::new());
    for spec in &specs {
        let Some(stats) = cache.peek(spec) else { continue };
        let sim_ipc = stats.commit_ipc();
        if sim_ipc <= 0.0 {
            continue;
        }
        let config = spec.machine_config();
        let Some(summary) = rf_model::summarize(
            &spec.benchmark,
            spec.commits,
            spec.seed,
            config.effective_insert_bandwidth(),
            config.cache_geometry(),
            config.cache_org(),
            config.predictor_kind(),
        ) else {
            continue;
        };
        let err = ((rf_model::evaluate(&summary, &config).ipc - sim_ipc) / sim_ipc * 100.0).abs();
        sum += err;
        n += 1;
        if err > worst {
            worst = err;
            worst_config = format!("{} width=4 regs={}", spec.benchmark, spec.regs);
        }
    }
    (n > 0).then(|| ledger::ModelErrorRecord {
        configs: n,
        mean_abs_pct_err: sum / n as f64,
        worst_pct_err: worst,
        worst_config,
    })
}

/// Runs the injected fault through the real pool/cache path, so the
/// panic travels the exact route a model bug would take.
#[cfg(feature = "fault-probe")]
fn run_fault_probe(commits: u64) -> String {
    let spec = rf_experiments::runner::RunSpec::baseline(runner::FAULT_BENCHMARK, 4)
        .commits(commits.clamp(1, 1_000));
    let _ = rf_experiments::runner::SimPool::from_env()
        .run_many(std::slice::from_ref(&spec));
    unreachable!("the fault probe always panics inside the pool");
}

#[cfg(not(feature = "fault-probe"))]
fn run_fault_probe(_commits: u64) -> String {
    unreachable!("fault_target() is always None without the fault-probe feature");
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(args)) => args,
        Ok(None) => return ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("all: {message}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if let Err(message) = runner::validate_env() {
        eprintln!("all: {message}");
        return ExitCode::from(2);
    }
    if let Some(secs) = args.deadline_secs {
        runner::set_default_deadline(Some(Duration::from_secs_f64(secs)));
    }
    let scale = args.commits.map_or_else(Scale::from_env, |commits| Scale { commits });
    match run_suite(&scale) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("all: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_suite(scale: &Scale) -> std::io::Result<ExitCode> {
    fs::create_dir_all("results")?;
    type Harness = fn(&Scale) -> String;
    // Each harness carries a representative benchmark for its traced
    // probe: FP-heavy figures probe an FP benchmark, integer-focused
    // ones an integer benchmark.
    let experiments: Vec<(&str, Harness, &str)> = vec![
        ("table1", rf_experiments::table1::run, "compress"),
        ("fig3", rf_experiments::fig3::run, "espresso"),
        ("fig4", rf_experiments::fig4::run, "tomcatv"),
        ("fig5", rf_experiments::fig5::run, "su2cor"),
        ("fig6", rf_experiments::fig6::run, "tomcatv"),
        ("fig7", rf_experiments::fig7::run, "doduc"),
        ("fig8", rf_experiments::fig8::run, "su2cor"),
        ("fig10", rf_experiments::fig10::run, "gcc1"),
        ("ablation", rf_experiments::ablation::run, "mdljdp2"),
        ("extensions", rf_experiments::extensions::run, "espresso"),
        ("sensitivity", rf_experiments::sensitivity::run, "ora"),
        ("dataflow", rf_experiments::dataflow::run, "mdljsp2"),
    ];
    let fault = fault_target();
    let mut bench = SuiteBench::start(scale.commits);
    // Ledger-informed ETA for RF_LOG progress lines: weight the
    // remaining harnesses by their historical median wall time at this
    // commit budget. Best-effort — no history, no estimate.
    let names: Vec<&str> = experiments.iter().map(|(n, _, _)| *n).collect();
    let medians = ledger::read_ledger(Path::new(ledger::LEDGER_PATH))
        .map(|records| ledger::harness_median_seconds(&records, Some(scale.commits)))
        .unwrap_or_default();
    bench.set_plan(&names, medians);
    // Live telemetry (RF_TELEMETRY=1): sampler + optional /metrics
    // endpoint over the harness loop; `finalize` below stops it before
    // the out-of-band calibration passes so the final snapshot's
    // counters reconcile exactly with the BENCH_suite.json totals.
    if let Some(cfg) = rf_obs::live::env_config().expect("telemetry env validated in main") {
        let jobs = rf_experiments::runner::SimPool::from_env().jobs() as u64;
        rf_obs::live::start(&cfg, scale.commits, jobs, experiments.len() as u64)?;
    }
    let mut headlines: Vec<(String, f64)> = Vec::new();
    let mut failures: Vec<(String, String)> = Vec::new();
    for (name, run, probe_bench) in experiments {
        let outcome = if fault.as_deref() == Some(name) {
            bench.try_time(name, || run_fault_probe(scale.commits))
        } else {
            bench.try_time(name, || run(scale))
        };
        match outcome {
            Ok(report) => {
                bench.attach_probe(probe_bench, PROBE_COMMITS.min(scale.commits));
                headlines.extend(
                    fidelity::extract_headlines(name, &report)
                        .into_iter()
                        .map(|h| (h.id.to_owned(), h.value)),
                );
                let path = format!("results/{name}.txt");
                fs::write(&path, &report)?;
                let timed = bench.entries().last().expect("just recorded");
                println!(
                    "== {name} ({:.1}s, {} sims) -> {path}\n{report}",
                    timed.seconds, timed.sims
                );
            }
            Err(message) => {
                // No report file and no probe for a failed harness; its
                // bench entry and ledger record carry the error, and the
                // remaining harnesses still run.
                eprintln!("== {name} FAILED: {message}");
                failures.push((name.to_owned(), message));
            }
        }
    }
    // Stop the sampler while the suite's measured work is complete and
    // the run cache is quiescent: the speedup calibration and sanitizer
    // probes below are out-of-band re-measurements, not suite work.
    if let Some(t) = rf_obs::live::finalize() {
        println!(
            "telemetry: {} snapshots @ {}ms -> {} (digest {})",
            t.snapshots,
            t.interval_ms,
            rf_obs::live::LIVE_PATH,
            t.digest
        );
        bench.set_telemetry(ledger::TelemetryRecord {
            interval_ms: t.interval_ms,
            snapshots: t.snapshots,
            digest: t.digest,
        });
    }
    let speedup = bench.measure_speedup(scale.commits.min(10_000));
    println!("parallel speedup vs 1 worker: {speedup:.2}x");
    // Sanitized probes: invariant-checked simulations over a small corner
    // of the configuration space, so every suite report certifies the
    // rename/freeing protocol of the binary that produced it.
    let probe = rf_check::suite_probe(scale.commits.min(2_000));
    bench.set_sanitizer(SanitizerStatus {
        probes: probe.probes,
        events: probe.events,
        violations: probe.violations,
    });
    println!("sanitizer: {} ({} probes, {} events)", probe.status(), probe.probes, probe.events);
    if let Some(m) = model_error_probe(scale.commits) {
        println!(
            "model error: mean |IPC err| {:.1}% over {} baselines, worst {:.1}% ({})",
            m.mean_abs_pct_err, m.configs, m.worst_pct_err, m.worst_config
        );
        bench.set_model_error(m);
    }
    // Seal the durable store once, after the last batch: per-append
    // fsyncs would serialize the pool on disk latency, and an unsynced
    // tail is dropped cleanly by the next reader's checksum scan.
    runner::store_sync();
    if let Some((hits, misses, writes)) = runner::store_counters() {
        println!("store: {hits} hits, {misses} misses, {writes} writes");
    }
    let json = bench.to_json();
    fs::write("results/BENCH_suite.json", &json)?;
    println!("== benchmark -> results/BENCH_suite.json\n{json}");
    // Append this run to the history ledger first: it is the
    // authoritative record. The repo-root mirror is best-effort — if it
    // fails, the mirror is stale but the history is intact.
    let line = bench.to_ledger_record(headlines).to_line();
    ledger::append_line(Path::new(ledger::LEDGER_PATH), &line)?;
    match ledger::write_latest(Path::new(ledger::LATEST_PATH), &line) {
        Ok(()) => println!(
            "== ledger record appended -> {} (latest copied to {})",
            ledger::LEDGER_PATH,
            ledger::LATEST_PATH
        ),
        Err(e) => eprintln!(
            "== ledger record appended -> {} (warning: mirror {} not updated: {e}; \
             the ledger is authoritative)",
            ledger::LEDGER_PATH,
            ledger::LATEST_PATH
        ),
    }
    if let Some(summary) = bench.suite_summary_line() {
        eprintln!("{summary}");
    }
    if failures.is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("suite FAILED: {}/12 harnesses did not complete", failures.len());
        for (name, message) in &failures {
            eprintln!("  {name}: {message}");
        }
        Ok(ExitCode::FAILURE)
    }
}
