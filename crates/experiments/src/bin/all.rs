//! Runs every table/figure harness and writes reports under `results/`,
//! plus a `results/BENCH_suite.json` timing report for the whole suite.
//!
//! Pass a commit budget as the first argument or set RF_COMMITS
//! (default 200000). RF_JOBS sets the number of parallel simulation
//! workers (default: all cores); RF_CACHE=0 disables the shared run
//! cache.

use rf_experiments::bench::SuiteBench;
use rf_experiments::runner::Scale;
use std::fs;

fn main() -> std::io::Result<()> {
    let scale = Scale {
        commits: std::env::args()
            .nth(1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| Scale::from_env().commits),
    };
    fs::create_dir_all("results")?;
    type Harness = fn(&Scale) -> String;
    let experiments: Vec<(&str, Harness)> = vec![
        ("table1", rf_experiments::table1::run),
        ("fig3", rf_experiments::fig3::run),
        ("fig4", rf_experiments::fig4::run),
        ("fig5", rf_experiments::fig5::run),
        ("fig6", rf_experiments::fig6::run),
        ("fig7", rf_experiments::fig7::run),
        ("fig8", rf_experiments::fig8::run),
        ("fig10", rf_experiments::fig10::run),
        ("ablation", rf_experiments::ablation::run),
        ("extensions", rf_experiments::extensions::run),
        ("sensitivity", rf_experiments::sensitivity::run),
        ("dataflow", rf_experiments::dataflow::run),
    ];
    let mut bench = SuiteBench::start(scale.commits);
    for (name, run) in experiments {
        let report = bench.time(name, || run(&scale));
        let path = format!("results/{name}.txt");
        fs::write(&path, &report)?;
        let timed = bench.entries().last().expect("just recorded");
        println!(
            "== {name} ({:.1}s, {} sims) -> {path}\n{report}",
            timed.seconds, timed.sims
        );
    }
    let speedup = bench.measure_speedup(scale.commits.min(10_000));
    println!("parallel speedup vs 1 worker: {speedup:.2}x");
    let json = bench.to_json();
    fs::write("results/BENCH_suite.json", &json)?;
    println!("== benchmark -> results/BENCH_suite.json\n{json}");
    Ok(())
}
