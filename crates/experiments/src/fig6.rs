//! Figure 6: average commit IPC and the fraction of run time with no
//! free registers, as the register-file size varies (dispatch queue held
//! constant), for both exception models and both widths.

use crate::aggregate::{all_names, mean_over};
use crate::plot::Chart;
use crate::runner::{RunSpec, Scale, SimPool};
use crate::table::Table;
use rf_core::{ExceptionModel, SimStats};

/// Register-file sizes swept by the paper.
pub const REG_SIZES: &[usize] = &[32, 48, 64, 80, 96, 128, 160, 256];

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Registers per class.
    pub regs: usize,
    /// Average commit IPC.
    pub commit_ipc: f64,
    /// Average fraction of cycles with an empty free list (either class).
    pub no_free_frac: f64,
}

/// Sweeps register counts for one width and exception model, submitting
/// the whole (register count x benchmark) grid as one parallel batch.
pub fn sweep(width: usize, model: ExceptionModel, scale: &Scale) -> Vec<Point> {
    let names = all_names();
    let specs: Vec<RunSpec> = REG_SIZES
        .iter()
        .flat_map(|&regs| {
            names.iter().map(move |n| {
                RunSpec::baseline(n, width).regs(regs).exceptions(model).commits(scale.commits)
            })
        })
        .collect();
    let stats = SimPool::from_env().run_many(&specs);
    REG_SIZES
        .iter()
        .zip(stats.chunks(names.len()))
        .map(|(&regs, chunk)| {
            let runs: Vec<_> = names.iter().cloned().zip(chunk.iter().cloned()).collect();
            Point {
                regs,
                commit_ipc: mean_over(&runs, &names, SimStats::commit_ipc),
                no_free_frac: mean_over(&runs, &names, SimStats::no_free_reg_fraction),
            }
        })
        .collect()
}

fn render_width(width: usize, scale: &Scale) -> String {
    let precise = sweep(width, ExceptionModel::Precise, scale);
    let imprecise = sweep(width, ExceptionModel::Imprecise, scale);
    let mut t = Table::new(vec![
        "regs",
        "IPC.precise",
        "IPC.imprecise",
        "noFree%.precise",
        "noFree%.imprecise",
    ]);
    for (p, i) in precise.iter().zip(imprecise.iter()) {
        t.row(vec![
            p.regs.to_string(),
            format!("{:.2}", p.commit_ipc),
            format!("{:.2}", i.commit_ipc),
            format!("{:.1}", 100.0 * p.no_free_frac),
            format!("{:.1}", 100.0 * i.no_free_frac),
        ]);
    }
    let mut chart = Chart::new(
        &format!("{width}-way issue: commit IPC vs registers"),
        "registers",
        "IPC",
    );
    chart.series(
        'p',
        "precise",
        precise.iter().map(|p| (p.regs as f64, p.commit_ipc)).collect(),
    );
    chart.series(
        'i',
        "imprecise",
        imprecise.iter().map(|p| (p.regs as f64, p.commit_ipc)).collect(),
    );
    format!(
        "({width}-way issue, dq {})\n{}\n{}",
        width * 8,
        t.render(),
        chart.render(64, 12)
    )
}

/// Runs Figure 6 for both widths and renders the report.
pub fn run(scale: &Scale) -> String {
    let mut out = String::from(
        "Figure 6: average commit IPC and %cycles with no free registers\n\
         vs register-file size (lockup-free cache)\n\n",
    );
    out.push_str(&render_width(4, scale));
    out.push('\n');
    out.push_str(&render_width(8, scale));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::simulate;

    #[test]
    fn more_registers_help_and_imprecise_helps_when_small() {
        let scale = Scale { commits: 8_000 };
        let small_p = simulate(
            &RunSpec::baseline("tomcatv", 4)
                .regs(40)
                .exceptions(ExceptionModel::Precise)
                .commits(scale.commits),
        );
        let small_i = simulate(
            &RunSpec::baseline("tomcatv", 4)
                .regs(40)
                .exceptions(ExceptionModel::Imprecise)
                .commits(scale.commits),
        );
        let big_p = simulate(
            &RunSpec::baseline("tomcatv", 4)
                .regs(256)
                .exceptions(ExceptionModel::Precise)
                .commits(scale.commits),
        );
        assert!(big_p.commit_ipc() > small_p.commit_ipc(), "registers should help tomcatv");
        assert!(
            small_i.commit_ipc() >= small_p.commit_ipc() * 0.98,
            "imprecise should not be slower when registers are scarce: {} vs {}",
            small_i.commit_ipc(),
            small_p.commit_ipc()
        );
        assert!(small_p.no_free_reg_fraction() > big_p.no_free_reg_fraction());
    }
}
