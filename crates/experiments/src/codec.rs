//! Stable, versioned byte encodings for [`RunSpec`] identity and
//! [`SimStats`] payloads — the bridge between the in-memory run cache
//! and the durable on-disk store.
//!
//! # Why not `std::hash::Hash`?
//!
//! The run cache used to key entries through `HashMap<RunSpec, _>`,
//! i.e. std's per-process-randomized SipHash. That is fine for one
//! process's lifetime but useless as a durable name: the same spec
//! hashes differently in every process and build, so it cannot address
//! an on-disk record. This module defines the canonical encoding once —
//! [`spec_key_bytes`] — and derives the 128-bit [`spec_digest`] from it
//! with the *fixed-key* SipHash in [`rf_store::hash`]. Both the
//! in-memory [`RunCache`](crate::runner::RunCache) and the store key by
//! this digest, so the two tiers always agree on identity.
//!
//! # Versioning
//!
//! - [`DIGEST_SCHEMA`] stamps each store record with the key-encoding
//!   generation. Changing the `RunSpec` encoding (new field, reordered
//!   field, widened enum) MUST bump it; `rfstudy store gc` then drops
//!   the stale generation. The golden test below pins the current
//!   encoding so an accidental change fails loudly instead of silently
//!   orphaning (or worse, misreading) the corpus.
//! - [`STATS_CODEC_VERSION`] prefixes each payload; [`decode_stats`]
//!   rejects any other version, so a stale payload shape can never be
//!   half-read into a current [`SimStats`].

use crate::runner::RunSpec;
use rf_bpred::{PredictorKind, PredictorStats};
use rf_core::{ExceptionModel, SchedPolicy, SimStats};
use rf_mem::{CacheConfig, CacheOrg, CacheStats};
use rf_store::Digest;

/// Version of the canonical `RunSpec` byte encoding (the store's record
/// schema field). Bump on ANY change to [`spec_key_bytes`].
pub const DIGEST_SCHEMA: u32 = 1;

/// Version of the `SimStats` payload encoding. Bump on ANY change to
/// [`encode_stats`] / [`decode_stats`].
pub const STATS_CODEC_VERSION: u32 = 1;

/// Magic prefix of a canonical spec key (guards against feeding foreign
/// bytes to the digest).
const SPEC_MAGIC: &[u8; 6] = b"rfspec";

/// Magic prefix of an encoded stats payload.
const STATS_MAGIC: &[u8; 6] = b"rfstat";

/// The canonical byte encoding of a [`RunSpec`]: a fixed field order,
/// little-endian integers, explicit enum tags, and explicit
/// present/absent markers for options. Every distinct spec maps to a
/// distinct byte string and vice versa (the encoding is injective), so
/// the digest of these bytes is a faithful identity.
pub fn spec_key_bytes(spec: &RunSpec) -> Vec<u8> {
    let mut out = Vec::with_capacity(128);
    out.extend_from_slice(SPEC_MAGIC);
    put_u32(&mut out, DIGEST_SCHEMA);
    put_bytes(&mut out, spec.benchmark.as_bytes());
    put_u64(&mut out, spec.width as u64);
    put_u64(&mut out, spec.dq as u64);
    put_u64(&mut out, spec.regs as u64);
    // Enum tags are written explicitly (not via `as u8` on the variant)
    // so reordering a declaration cannot silently change the encoding.
    out.push(match spec.exceptions {
        ExceptionModel::Precise => 0,
        ExceptionModel::Imprecise => 1,
        ExceptionModel::AlphaHybrid => 2,
    });
    out.push(match spec.cache {
        CacheOrg::Perfect => 0,
        CacheOrg::Lockup => 1,
        CacheOrg::LockupFree => 2,
    });
    put_cache_config(&mut out, &spec.cache_geometry);
    out.push(match spec.policy {
        SchedPolicy::OldestFirst => 0,
        SchedPolicy::YoungestFirst => 1,
    });
    out.push(match spec.predictor {
        PredictorKind::Bimodal => 0,
        PredictorKind::Gshare => 1,
        PredictorKind::Combining => 2,
    });
    put_opt_u64(&mut out, spec.insert_bw.map(|v| v as u64));
    put_opt_u64(&mut out, spec.reorder.map(|v| v as u64));
    out.push(spec.split_dq as u8);
    match &spec.icache {
        None => out.push(0),
        Some((cfg, penalty)) => {
            out.push(1);
            put_cache_config(&mut out, cfg);
            put_u64(&mut out, *penalty);
        }
    }
    put_u64(&mut out, spec.commits);
    put_u64(&mut out, spec.seed);
    out
}

/// The stable 128-bit identity of a spec: [`rf_store::hash::digest128`]
/// over [`spec_key_bytes`]. Identical across processes, builds, and
/// machines — unlike `std::hash::Hash`.
pub fn spec_digest(spec: &RunSpec) -> Digest {
    Digest::of(&spec_key_bytes(spec))
}

/// Encodes a [`SimStats`] into its versioned payload bytes.
pub fn encode_stats(stats: &SimStats) -> Vec<u8> {
    let mut out = Vec::with_capacity(512);
    out.extend_from_slice(STATS_MAGIC);
    put_u32(&mut out, STATS_CODEC_VERSION);
    for v in [
        stats.cycles,
        stats.committed,
        stats.issued,
        stats.inserted,
        stats.squashed,
        stats.committed_loads,
        stats.committed_cbr,
        stats.issued_loads,
        stats.issued_cbr,
    ] {
        put_u64(&mut out, v);
    }
    put_u64(&mut out, stats.bpred.predicted());
    put_u64(&mut out, stats.bpred.mispredicted());
    for v in [
        stats.cache.loads,
        stats.cache.load_hits,
        stats.cache.load_misses_primary,
        stats.cache.load_misses_secondary,
        stats.cache.stores,
        stats.cache.store_hits,
        stats.cache.fills_installed,
        stats.cache.fills_cancelled,
    ] {
        put_u64(&mut out, v);
    }
    put_u64(&mut out, stats.peak_outstanding_fills as u64);
    put_u64(&mut out, stats.icache_miss_rate.to_bits());
    for v in [
        stats.no_free_int_cycles,
        stats.no_free_fp_cycles,
        stats.no_free_any_cycles,
        stats.insert_stall_no_reg,
        stats.insert_stall_dq_full,
        stats.dq_occupancy_sum,
    ] {
        put_u64(&mut out, v);
    }
    for hist in stats.live_hist.iter().chain(stats.live_hist_imprecise.iter()) {
        put_u32(&mut out, hist.len() as u32);
        for &v in hist {
            put_u64(&mut out, v);
        }
    }
    for class in &stats.cat_sums {
        for &v in class {
            put_u64(&mut out, v);
        }
    }
    out
}

/// Decodes a payload produced by [`encode_stats`].
///
/// # Errors
///
/// A descriptive message when the magic, version, length, or any field
/// bound does not hold — a corrupt or stale payload never becomes a
/// half-initialized `SimStats`.
pub fn decode_stats(bytes: &[u8]) -> Result<SimStats, String> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(STATS_MAGIC.len())? != STATS_MAGIC {
        return Err("stats payload: bad magic".into());
    }
    let version = r.u32()?;
    if version != STATS_CODEC_VERSION {
        return Err(format!(
            "stats payload: version {version}, expected {STATS_CODEC_VERSION}"
        ));
    }
    let mut stats = SimStats::new(0);
    stats.cycles = r.u64()?;
    stats.committed = r.u64()?;
    stats.issued = r.u64()?;
    stats.inserted = r.u64()?;
    stats.squashed = r.u64()?;
    stats.committed_loads = r.u64()?;
    stats.committed_cbr = r.u64()?;
    stats.issued_loads = r.u64()?;
    stats.issued_cbr = r.u64()?;
    let predicted = r.u64()?;
    let mispredicted = r.u64()?;
    if mispredicted > predicted {
        return Err("stats payload: mispredicted exceeds predicted".into());
    }
    stats.bpred = PredictorStats::from_counts(predicted, mispredicted);
    stats.cache = CacheStats {
        loads: r.u64()?,
        load_hits: r.u64()?,
        load_misses_primary: r.u64()?,
        load_misses_secondary: r.u64()?,
        stores: r.u64()?,
        store_hits: r.u64()?,
        fills_installed: r.u64()?,
        fills_cancelled: r.u64()?,
    };
    stats.peak_outstanding_fills = usize::try_from(r.u64()?)
        .map_err(|_| "stats payload: peak_outstanding_fills overflows usize".to_string())?;
    stats.icache_miss_rate = f64::from_bits(r.u64()?);
    stats.no_free_int_cycles = r.u64()?;
    stats.no_free_fp_cycles = r.u64()?;
    stats.no_free_any_cycles = r.u64()?;
    stats.insert_stall_no_reg = r.u64()?;
    stats.insert_stall_dq_full = r.u64()?;
    stats.dq_occupancy_sum = r.u64()?;
    let mut hists = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for hist in &mut hists {
        let len = r.u32()? as usize;
        // Each histogram entry costs 8 payload bytes, so the length
        // field can never legitimately exceed what remains.
        if len > r.remaining() / 8 {
            return Err("stats payload: histogram length exceeds payload".into());
        }
        hist.reserve_exact(len);
        for _ in 0..len {
            hist.push(r.u64()?);
        }
    }
    let [h0, h1, h2, h3] = hists;
    stats.live_hist = [h0, h1];
    stats.live_hist_imprecise = [h2, h3];
    for class in &mut stats.cat_sums {
        for v in class.iter_mut() {
            *v = r.u64()?;
        }
    }
    if r.remaining() != 0 {
        return Err(format!(
            "stats payload: {} trailing bytes",
            r.remaining()
        ));
    }
    Ok(stats)
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put_u64(out, v);
        }
    }
}

fn put_cache_config(out: &mut Vec<u8>, cfg: &CacheConfig) {
    put_u64(out, cfg.size_bytes() as u64);
    put_u64(out, cfg.assoc() as u64);
    put_u64(out, cfg.line_bytes() as u64);
    put_u64(out, cfg.hit_latency());
    put_u64(out, cfg.fetch_latency());
}

/// Bounds-checked little-endian cursor over a payload.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "stats payload: truncated at byte {} (wanted {n} more)",
                self.pos
            ));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> RunSpec {
        RunSpec::baseline("compress", 4).commits(2_000)
    }

    fn busy_stats() -> SimStats {
        let mut s = SimStats::new(8);
        s.cycles = 12_345;
        s.committed = 2_000;
        s.issued = 2_500;
        s.inserted = 2_600;
        s.squashed = 100;
        s.committed_loads = 400;
        s.committed_cbr = 300;
        s.issued_loads = 450;
        s.issued_cbr = 320;
        s.bpred = PredictorStats::from_counts(300, 17);
        s.cache = CacheStats {
            loads: 400,
            load_hits: 380,
            load_misses_primary: 15,
            load_misses_secondary: 5,
            stores: 200,
            store_hits: 190,
            fills_installed: 14,
            fills_cancelled: 1,
        };
        s.peak_outstanding_fills = 3;
        s.icache_miss_rate = 0.0125;
        s.no_free_int_cycles = 11;
        s.no_free_fp_cycles = 7;
        s.no_free_any_cycles = 15;
        s.insert_stall_no_reg = 9;
        s.insert_stall_dq_full = 21;
        s.dq_occupancy_sum = 98_765;
        s.live_hist[0][3] = 42;
        s.live_hist[1][5] = 7;
        s.live_hist_imprecise[0][2] = 13;
        s.cat_sums[0][0] = 1_000;
        s.cat_sums[1][3] = 77;
        s
    }

    /// GOLDEN: pins the canonical encoding and its digest. If this test
    /// fails because you changed `spec_key_bytes` (or any type it
    /// encodes), bump [`DIGEST_SCHEMA`], update the pinned values, and
    /// note in the changelog that existing store corpora need
    /// `rfstudy store gc`.
    #[test]
    fn spec_digest_is_pinned() {
        let spec = sample_spec();
        let bytes = spec_key_bytes(&spec);
        assert_eq!(&bytes[..6], b"rfspec");
        assert_eq!(bytes.len(), 110, "encoding length changed");
        assert_eq!(
            spec_digest(&spec).to_hex(),
            "6ce7f9631385909453e730557334a8fb",
            "canonical digest changed — see test doc comment"
        );
        // A second field mix, exercising every Option/enum arm.
        let mut alt = RunSpec::baseline("ear", 8);
        alt.exceptions = ExceptionModel::AlphaHybrid;
        alt.cache = CacheOrg::Perfect;
        alt.policy = SchedPolicy::YoungestFirst;
        alt.predictor = PredictorKind::Bimodal;
        alt.insert_bw = Some(2);
        alt.reorder = Some(64);
        alt.split_dq = true;
        alt.icache = Some((CacheConfig::new(8 * 1024, 1, 32, 1, 10), 6));
        let alt = alt.commits(5_000);
        assert_eq!(
            spec_digest(&alt).to_hex(),
            "8d4713beb3f2dc817b3a0f681587ec21",
            "canonical digest changed — see test doc comment"
        );
    }

    #[test]
    fn digest_distinguishes_every_field() {
        let base = sample_spec();
        let d0 = spec_digest(&base);
        let mut variants: Vec<RunSpec> = Vec::new();
        let mut v = base.clone();
        v.benchmark = "ear".into();
        variants.push(v);
        let mut v = base.clone();
        v.width = 8;
        variants.push(v);
        let mut v = base.clone();
        v.regs = 64;
        variants.push(v);
        let mut v = base.clone();
        v.exceptions = ExceptionModel::Imprecise;
        variants.push(v);
        let mut v = base.clone();
        v.cache = CacheOrg::Lockup;
        variants.push(v);
        let mut v = base.clone();
        v.insert_bw = Some(0);
        variants.push(v);
        let mut v = base.clone();
        v.split_dq = true;
        variants.push(v);
        let mut v = base.clone();
        v.seed = 13;
        variants.push(v);
        for variant in &variants {
            assert_ne!(spec_digest(variant), d0, "variant {variant:?}");
        }
        // And the digest is a pure function of the spec.
        assert_eq!(spec_digest(&base), d0);
    }

    #[test]
    fn stats_round_trip() {
        let stats = busy_stats();
        let bytes = encode_stats(&stats);
        let back = decode_stats(&bytes).expect("decode");
        assert_eq!(back, stats);
    }

    #[test]
    fn stats_decode_rejects_malformed_payloads() {
        let stats = busy_stats();
        let bytes = encode_stats(&stats);
        // Truncation anywhere must fail, never partially decode.
        for cut in [0, 5, 6, 9, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_stats(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage is rejected too.
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(decode_stats(&extended).is_err());
        // Wrong magic.
        let mut wrong = bytes.clone();
        wrong[0] ^= 0xff;
        assert!(decode_stats(&wrong).is_err());
        // Wrong version.
        let mut stale = bytes.clone();
        stale[6] = 0xee;
        assert!(decode_stats(&stale).is_err());
        // Absurd histogram length cannot cause a huge allocation.
        let mut hist_bomb = bytes;
        // First histogram length field sits right after the fixed
        // counters: magic(6) + ver(4) + 9+2+8+1+1+6 u64s.
        let hist_off = 6 + 4 + 27 * 8;
        hist_bomb[hist_off..hist_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_stats(&hist_bomb).is_err());
    }
}
