//! Figure 3: IPC and 90th-percentile live registers vs dispatch-queue
//! size, with the four-category liveness breakdown.
//!
//! One simulation per (width, dispatch-queue size, benchmark) with 2048
//! registers under the precise model; the shadow imprecise engine
//! provides the imprecise liveness distribution from the same run, so a
//! single simulation yields both curves and the stacked categories.

use crate::aggregate::{
    all_names, averaged_distribution, distribution_percentile, mean_over,
};
use crate::runner::{fp_benchmarks, RunSpec, Scale, SimPool};
use crate::table::Table;
use rf_core::{LiveModel, SimStats};
use rf_isa::RegClass;

/// Dispatch-queue sizes swept by the paper.
pub const DQ_SIZES: &[usize] = &[8, 16, 32, 64, 128, 256];

/// One sweep point, aggregated over benchmarks.
#[derive(Debug, Clone)]
pub struct Point {
    /// Dispatch-queue size.
    pub dq: usize,
    /// Average issue IPC (all benchmarks).
    pub issue_ipc: f64,
    /// Average commit IPC (all benchmarks).
    pub commit_ipc: f64,
    /// 90th-percentile live registers per class: `(precise, imprecise)`.
    pub live90: [(usize, usize); 2],
    /// Mean live registers per class per category
    /// (in-queue, in-flight, wait-imprecise, wait-precise).
    pub categories: [[f64; 4]; 2],
}

/// Sweeps one issue width over the dispatch-queue sizes. The whole
/// (queue size x benchmark) grid is submitted as one batch so the pool
/// can spread it over every core.
pub fn sweep(width: usize, scale: &Scale) -> Vec<Point> {
    let names = all_names();
    let fp_names = fp_benchmarks();
    let specs: Vec<RunSpec> = DQ_SIZES
        .iter()
        .flat_map(|&dq| {
            names
                .iter()
                .map(move |n| RunSpec::baseline(n, width).dq(dq).commits(scale.commits))
        })
        .collect();
    let stats = SimPool::from_env().run_many(&specs);
    DQ_SIZES
        .iter()
        .zip(stats.chunks(names.len()))
        .map(|(&dq, chunk)| {
            let runs: Vec<_> = names.iter().cloned().zip(chunk.iter().cloned()).collect();
            let live90 = [RegClass::Int, RegClass::Fp].map(|class| {
                let include = if class == RegClass::Int { &names } else { &fp_names };
                let p = averaged_distribution(&runs, include, class, LiveModel::Precise);
                let i = averaged_distribution(&runs, include, class, LiveModel::Imprecise);
                (distribution_percentile(&p, 90.0), distribution_percentile(&i, 90.0))
            });
            let categories = [RegClass::Int, RegClass::Fp].map(|class| {
                let include = if class == RegClass::Int { &names } else { &fp_names };
                let mut cat = [0.0; 4];
                for (k, slot) in cat.iter_mut().enumerate() {
                    *slot = mean_over(&runs, include, |s: &SimStats| s.category_means(class)[k]);
                }
                cat
            });
            Point {
                dq,
                issue_ipc: mean_over(&runs, &names, SimStats::issue_ipc),
                commit_ipc: mean_over(&runs, &names, SimStats::commit_ipc),
                live90,
                categories,
            }
        })
        .collect()
}

fn render_width(width: usize, points: &[Point]) -> String {
    let mut out = format!("{width}-way issue\n");
    for (class, label) in [(RegClass::Int, "integer"), (RegClass::Fp, "floating-point")] {
        let mut t = Table::new(vec![
            "dq",
            "issueIPC",
            "commitIPC",
            "live90.precise",
            "live90.imprecise",
            "cat.queue",
            "cat.flight",
            "cat.waitImp",
            "cat.waitPrec",
        ]);
        for p in points {
            let (pr, im) = p.live90[class.index()];
            let c = p.categories[class.index()];
            t.row(vec![
                p.dq.to_string(),
                format!("{:.2}", p.issue_ipc),
                format!("{:.2}", p.commit_ipc),
                pr.to_string(),
                im.to_string(),
                format!("{:.1}", c[0]),
                format!("{:.1}", c[1]),
                format!("{:.1}", c[2]),
                format!("{:.1}", c[3]),
            ]);
        }
        out.push_str(&format!("\n{label} registers\n"));
        out.push_str(&t.render());
    }
    out
}

/// Runs the Figure 3 sweep for both widths and renders the report.
pub fn run(scale: &Scale) -> String {
    let mut out = String::from(
        "Figure 3: IPC and 90th-percentile live registers vs dispatch queue size\n\
         (2048 registers, lockup-free cache; categories are per-cycle means)\n\n",
    );
    out.push_str(&render_width(4, &sweep(4, scale)));
    out.push('\n');
    out.push_str(&render_width(8, &sweep(8, scale)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_point_invariants() {
        // A tiny sweep at two dq sizes: IPC grows (or holds) with a larger
        // queue, and the precise 90th percentile is at least the
        // imprecise one.
        std::env::set_var("RF_COMMITS", "2000");
        let base = RunSpec::baseline("espresso", 4).dq(8).commits(4_000);
        let small = crate::runner::simulate(&base);
        let big = crate::runner::simulate(&base.clone().dq(64));
        assert!(big.commit_ipc() >= small.commit_ipc() * 0.9);
        for class in [RegClass::Int, RegClass::Fp] {
            let p = small.live_percentile(class, LiveModel::Precise, 90.0);
            let i = small.live_percentile(class, LiveModel::Imprecise, 90.0);
            assert!(p >= i, "precise {p} < imprecise {i}");
            assert!(p >= 31, "at least the architectural mappings are live");
        }
    }
}
