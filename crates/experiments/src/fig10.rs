//! Figure 10: register-file cycle time and estimated machine performance
//! (BIPS) vs register-file size, for both widths and exception models.
//!
//! As in the paper, machine cycle time is assumed to scale with the
//! *integer* register file's cycle time; BIPS = commit IPC / cycle time.
//! The characteristic result: BIPS has a maximum at a moderate register
//! count (below it, register-starvation stalls dominate; above it, the
//! growing register file slows every cycle), and the 8-way machine's peak
//! is only modestly above the 4-way machine's.

use crate::fig6::{self, REG_SIZES};
use crate::plot::Chart;
use crate::runner::Scale;
use crate::table::Table;
use rf_core::ExceptionModel;
use rf_timing::{bips, RegFileGeometry, TimingModel};

/// One width's Figure 10 data.
#[derive(Debug, Clone)]
pub struct WidthData {
    /// Issue width.
    pub width: usize,
    /// `(regs, int cycle ns, fp cycle ns, BIPS precise, BIPS imprecise)`.
    pub rows: Vec<(usize, f64, f64, f64, f64)>,
}

impl WidthData {
    /// The maximum BIPS under the given model, with its register count.
    pub fn peak(&self, model: ExceptionModel) -> (usize, f64) {
        self.rows
            .iter()
            .map(|&(regs, _, _, p, i)| {
                (regs, if model == ExceptionModel::Precise { p } else { i })
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("rows are non-empty")
    }
}

/// Computes Figure 10 data for one width (re-running the Figure 6 IPC
/// sweeps under both models).
pub fn width_data(width: usize, scale: &Scale) -> WidthData {
    let model = TimingModel::cmos_05um();
    let precise = fig6::sweep(width, ExceptionModel::Precise, scale);
    let imprecise = fig6::sweep(width, ExceptionModel::Imprecise, scale);
    let rows = REG_SIZES
        .iter()
        .enumerate()
        .map(|(i, &regs)| {
            let t_int = model.cycle_time_ns(&RegFileGeometry::int_for_width(width, regs));
            let t_fp = model.cycle_time_ns(&RegFileGeometry::fp_for_width(width, regs));
            (
                regs,
                t_int,
                t_fp,
                bips(precise[i].commit_ipc, t_int),
                bips(imprecise[i].commit_ipc, t_int),
            )
        })
        .collect();
    WidthData { width, rows }
}

fn render(data: &WidthData) -> String {
    let mut t = Table::new(vec![
        "regs",
        "int.cycle(ns)",
        "fp.cycle(ns)",
        "BIPS.precise",
        "BIPS.imprecise",
    ]);
    for &(regs, ti, tf, bp, bi) in &data.rows {
        t.row(vec![
            regs.to_string(),
            format!("{ti:.3}"),
            format!("{tf:.3}"),
            format!("{bp:.2}"),
            format!("{bi:.2}"),
        ]);
    }
    let (pr, pb) = data.peak(ExceptionModel::Precise);
    let (ir, ib) = data.peak(ExceptionModel::Imprecise);
    let mut chart = Chart::new(
        &format!("{}-way issue: BIPS and cycle time vs registers", data.width),
        "registers",
        "BIPS / ns*4",
    );
    chart.series(
        'P',
        "BIPS precise",
        data.rows.iter().map(|r| (r.0 as f64, r.3)).collect(),
    );
    chart.series(
        'I',
        "BIPS imprecise",
        data.rows.iter().map(|r| (r.0 as f64, r.4)).collect(),
    );
    chart.series(
        't',
        "int cycle (ns, x4 scale)",
        data.rows.iter().map(|r| (r.0 as f64, r.1 * 4.0)).collect(),
    );
    format!(
        "({}-way issue, dq {})\n{}peak BIPS: precise {pb:.2} at {pr} regs, imprecise {ib:.2} at {ir} regs\n\n{}",
        data.width,
        data.width * 8,
        t.render(),
        chart.render(64, 14)
    )
}

/// Runs Figure 10 for both widths and renders the report, including the
/// paper's 4-way vs 8-way peak comparison.
pub fn run(scale: &Scale) -> String {
    let four = width_data(4, scale);
    let eight = width_data(8, scale);
    let gain = eight.peak(ExceptionModel::Precise).1 / four.peak(ExceptionModel::Precise).1;
    format!(
        "Figure 10: register-file timing and estimated machine performance\n\
         (machine cycle time assumed proportional to the integer register file's)\n\n{}\n{}\n\
         8-way peak BIPS / 4-way peak BIPS (precise) = {gain:.2} \
         (paper: ~1.20)\n",
        render(&four),
        render(&eight),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bips_peaks_at_moderate_register_counts() {
        let data = width_data(4, &Scale { commits: 6_000 });
        let (peak_regs, peak) = data.peak(ExceptionModel::Precise);
        // The smallest and largest register files must not be the peak by
        // a clear margin (the paper's maxima are interior).
        let first = data.rows.first().unwrap().3;
        let last = data.rows.last().unwrap().3;
        assert!(peak > first, "peak {peak} at {peak_regs} vs 32-reg {first}");
        assert!(peak >= last, "peak {peak} at {peak_regs} vs 256-reg {last}");
    }
}
