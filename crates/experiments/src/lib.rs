//! Experiment harnesses for the HPCA'96 register-file study.
//!
//! Each table and figure of the paper's evaluation has a module here that
//! reruns the underlying simulations and renders the same rows/series the
//! paper reports:
//!
//! | module  | paper content |
//! |---------|---------------|
//! | [`table1`] | per-benchmark dynamic statistics at both issue widths |
//! | [`fig3`]   | IPC and 90th-percentile live registers vs dispatch-queue size, with the four-category breakdown |
//! | [`fig4`]   | average live-register run-time coverage, precise vs imprecise |
//! | [`fig5`]   | tomcatv FP-register coverage (8-way), precise vs imprecise |
//! | [`fig6`]   | commit IPC and no-free-register fraction vs register count |
//! | [`fig7`]   | commit IPC for perfect / lockup-free / lockup caches |
//! | [`fig8`]   | compress integer-register coverage for the three caches |
//! | [`fig10`]  | register-file cycle time and BIPS vs register count |
//! | [`ablation`] | design-choice ablations (scheduler policy, insertion bandwidth) |
//! | [`extensions`] | extensions: Alpha-style hybrid exceptions, split dispatch queues |
//! | [`sensitivity`] | fetch latency / cache capacity / I-cache sensitivity |
//! | [`dataflow`] | Wall-style dataflow ILP limits vs achieved IPC |
//!
//! (The paper's Figure 9 is the multiported cell schematic; it is encoded
//! as [`rf_timing::RegFileGeometry`]'s line-count rules rather than
//! reproduced as an experiment.)
//!
//! Every module exposes `run(&Scale) -> String`; the crate's binaries
//! print that report. [`Scale`] controls the number of committed
//! instructions per simulation so CI can run the suite quickly while the
//! real harness uses longer runs (`RF_COMMITS` in the environment, or the
//! first CLI argument of each binary).
//!
//! # Examples
//!
//! ```
//! use rf_experiments::{runner::{RunSpec, Scale}};
//!
//! let spec = RunSpec::baseline("compress", 4).commits(5_000);
//! let stats = rf_experiments::runner::simulate(&spec);
//! assert_eq!(stats.committed, 5_000);
//! # let _ = Scale::fast();
//! ```

#![warn(missing_docs)]

pub mod ablation;
pub mod aggregate;
pub mod bench;
pub mod codec;
pub mod dataflow;
pub mod extensions;
pub mod fig10;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod plot;
pub mod runner;
pub mod sensitivity;
pub mod table;
pub mod table1;

pub use runner::{RunCache, RunSpec, Scale, SimPool};

/// With `--features profile-alloc`, every binary and test linking this
/// crate counts allocations through [`rf_obs::alloc::CountingAlloc`];
/// suite ledger records then carry an `"alloc"` profile block. Off by
/// default: the system allocator is used untouched and ledger records
/// say `"alloc": null`.
#[cfg(feature = "profile-alloc")]
#[global_allocator]
static PROFILE_ALLOC: rf_obs::alloc::CountingAlloc = rf_obs::alloc::CountingAlloc::new();
