//! Minimal ASCII line charts, so the figure harnesses can render the
//! paper's *figures* (not just their data tables) straight to a terminal
//! or text report.

/// One plotted series: glyph, legend name, points.
type Series = (char, String, Vec<(f64, f64)>);

/// An ASCII scatter/line chart with multiple glyph-coded series.
///
/// # Examples
///
/// ```
/// use rf_experiments::plot::Chart;
///
/// let mut c = Chart::new("IPC vs registers", "regs", "IPC");
/// c.series('p', "precise", vec![(32.0, 1.0), (64.0, 2.0), (128.0, 2.5)]);
/// c.series('i', "imprecise", vec![(32.0, 1.5), (64.0, 2.3), (128.0, 2.5)]);
/// let s = c.render(40, 10);
/// assert!(s.contains("IPC vs registers"));
/// assert!(s.contains("p = precise"));
/// ```
#[derive(Debug, Clone)]
pub struct Chart {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<Series>,
}

impl Chart {
    /// Creates an empty chart.
    pub fn new(title: &str, x_label: &str, y_label: &str) -> Self {
        Self {
            title: title.to_owned(),
            x_label: x_label.to_owned(),
            y_label: y_label.to_owned(),
            series: Vec::new(),
        }
    }

    /// Adds a series plotted with `glyph`. Non-finite points are skipped.
    pub fn series(&mut self, glyph: char, name: &str, points: Vec<(f64, f64)>) -> &mut Self {
        let clean: Vec<(f64, f64)> =
            points.into_iter().filter(|(x, y)| x.is_finite() && y.is_finite()).collect();
        self.series.push((glyph, name.to_owned(), clean));
        self
    }

    /// Number of series added so far.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether the chart has no series.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Renders the chart into a `width x height` plot area (plus axes and
    /// legend). Returns a note instead of a plot if there is no data.
    pub fn render(&self, width: usize, height: usize) -> String {
        let width = width.max(8);
        let height = height.max(4);
        let all: Vec<(f64, f64)> =
            self.series.iter().flat_map(|(_, _, pts)| pts.iter().copied()).collect();
        if all.is_empty() {
            return format!("{} (no data)\n", self.title);
        }
        let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
        for (x, y) in &all {
            x0 = x0.min(*x);
            x1 = x1.max(*x);
            y0 = y0.min(*y);
            y1 = y1.max(*y);
        }
        if (x1 - x0).abs() < f64::EPSILON {
            x1 = x0 + 1.0;
        }
        if (y1 - y0).abs() < f64::EPSILON {
            y1 = y0 + 1.0;
        }
        let mut grid = vec![vec![' '; width]; height];
        for (glyph, _, pts) in &self.series {
            // Linear interpolation between consecutive points for a
            // line-chart look.
            for w in pts.windows(2) {
                let (xa, ya) = w[0];
                let (xb, yb) = w[1];
                let steps = width * 2;
                for s in 0..=steps {
                    let t = s as f64 / steps as f64;
                    let x = xa + t * (xb - xa);
                    let y = ya + t * (yb - ya);
                    let cx = ((x - x0) / (x1 - x0) * (width - 1) as f64).round() as usize;
                    let cy = ((y - y0) / (y1 - y0) * (height - 1) as f64).round() as usize;
                    grid[height - 1 - cy][cx] = *glyph;
                }
            }
            if pts.len() == 1 {
                let (x, y) = pts[0];
                let cx = ((x - x0) / (x1 - x0) * (width - 1) as f64).round() as usize;
                let cy = ((y - y0) / (y1 - y0) * (height - 1) as f64).round() as usize;
                grid[height - 1 - cy][cx] = *glyph;
            }
        }
        let mut out = format!("{}\n", self.title);
        out.push_str(&format!("{} ({:.3} .. {:.3})\n", self.y_label, y0, y1));
        for row in grid {
            out.push_str("  |");
            out.extend(row);
            out.push('\n');
        }
        out.push_str("  +");
        out.push_str(&"-".repeat(width));
        out.push('\n');
        out.push_str(&format!(
            "   {} ({:.0} .. {:.0})   legend: {}\n",
            self.x_label,
            x0,
            x1,
            self.series
                .iter()
                .map(|(g, n, _)| format!("{g} = {n}"))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_points_at_extremes() {
        let mut c = Chart::new("t", "x", "y");
        c.series('*', "s", vec![(0.0, 0.0), (10.0, 10.0)]);
        let s = c.render(20, 5);
        let lines: Vec<&str> = s.lines().collect();
        // Bottom-left and top-right cells are set.
        assert!(lines[2].contains('*'), "top row should contain the max point");
        assert!(lines[6].starts_with("  |*"), "bottom row starts at the min point");
    }

    #[test]
    fn empty_chart_degrades_gracefully() {
        let c = Chart::new("nothing", "x", "y");
        assert!(c.render(20, 5).contains("no data"));
        assert!(c.is_empty());
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let mut c = Chart::new("flat", "x", "y");
        c.series('=', "flat", vec![(0.0, 2.0), (5.0, 2.0)]);
        let s = c.render(20, 5);
        assert!(s.contains('='));
    }

    #[test]
    fn legend_lists_all_series() {
        let mut c = Chart::new("t", "x", "y");
        c.series('a', "first", vec![(0.0, 1.0), (1.0, 2.0)]);
        c.series('b', "second", vec![(0.0, 2.0), (1.0, 1.0)]);
        assert_eq!(c.len(), 2);
        let s = c.render(20, 5);
        assert!(s.contains("a = first") && s.contains("b = second"));
    }

    #[test]
    fn non_finite_points_are_dropped() {
        let mut c = Chart::new("t", "x", "y");
        c.series('x', "s", vec![(0.0, f64::NAN), (1.0, 1.0), (2.0, 2.0)]);
        let s = c.render(20, 5);
        assert!(s.contains('x'));
    }
}
