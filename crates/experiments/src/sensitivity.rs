//! Sensitivity studies beyond the paper's fixed memory parameters: the
//! memory fetch latency (the paper holds it at 16 cycles), the data-cache
//! capacity (held at 64 KB), and the effect of a finite instruction cache
//! (the paper's is effectively perfect).

use crate::aggregate::{all_names, mean_over};
use crate::runner::{RunSpec, Scale, SimPool};
use crate::table::Table;
use rf_core::SimStats;
use rf_mem::CacheConfig;
use std::sync::Arc;

fn run_suite(
    configure: impl Fn(RunSpec) -> RunSpec,
    commits: u64,
) -> Vec<(String, Arc<SimStats>)> {
    let names = all_names();
    let specs: Vec<RunSpec> = names
        .iter()
        .map(|n| configure(RunSpec::baseline(n, 4).regs(96).commits(commits)))
        .collect();
    let stats = SimPool::from_env().run_many(&specs);
    names.into_iter().zip(stats).collect()
}

/// Runs the sensitivity sweeps and renders the report.
pub fn run(scale: &Scale) -> String {
    let names = all_names();
    let mut out = String::from(
        "Sensitivity studies (4-way issue, dq 32, 96 registers, lockup-free)\n\n",
    );

    out.push_str("Memory fetch latency (paper: 16 cycles)\n");
    let mut t = Table::new(vec!["latency", "avg commit IPC", "avg miss%"]);
    for latency in [8u64, 16, 32, 64] {
        let geometry = CacheConfig::new(64 * 1024, 2, 32, 1, latency);
        let runs = run_suite(|c| c.cache_geometry(geometry), scale.commits);
        t.row(vec![
            latency.to_string(),
            format!("{:.2}", mean_over(&runs, &names, SimStats::commit_ipc)),
            format!("{:.1}", 100.0 * mean_over(&runs, &names, |s| s.cache.load_miss_rate())),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\nData-cache capacity (paper: 64 KB, 2-way)\n");
    let mut t = Table::new(vec!["capacity", "avg commit IPC", "avg miss%"]);
    for kb in [16usize, 32, 64, 128, 256] {
        let geometry = CacheConfig::new(kb * 1024, 2, 32, 1, 16);
        let runs = run_suite(|c| c.cache_geometry(geometry), scale.commits);
        t.row(vec![
            format!("{kb}KB"),
            format!("{:.2}", mean_over(&runs, &names, SimStats::commit_ipc)),
            format!("{:.1}", 100.0 * mean_over(&runs, &names, |s| s.cache.load_miss_rate())),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\nInstruction cache (paper: perfect / fixed penalty, <1% misses)\n");
    let mut t = Table::new(vec!["icache", "avg commit IPC", "avg icache miss%"]);
    let perfect = run_suite(|c| c, scale.commits);
    t.row(vec![
        "perfect".to_owned(),
        format!("{:.2}", mean_over(&perfect, &names, SimStats::commit_ipc)),
        "0.0".to_owned(),
    ]);
    let finite = run_suite(
        |c| c.icache(CacheConfig::new(64 * 1024, 2, 32, 1, 16), 16),
        scale.commits,
    );
    t.row(vec![
        "64KB/16cy".to_owned(),
        format!("{:.2}", mean_over(&finite, &names, SimStats::commit_ipc)),
        format!("{:.2}", 100.0 * mean_over(&finite, &names, |s| s.icache_miss_rate)),
    ]);
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shorter_fetch_latency_never_hurts() {
        let commits = 4_000;
        let names = all_names();
        let fast = run_suite(
            |c| c.cache_geometry(CacheConfig::new(64 * 1024, 2, 32, 1, 8)),
            commits,
        );
        let slow = run_suite(
            |c| c.cache_geometry(CacheConfig::new(64 * 1024, 2, 32, 1, 32)),
            commits,
        );
        let f = mean_over(&fast, &names, SimStats::commit_ipc);
        let s = mean_over(&slow, &names, SimStats::commit_ipc);
        assert!(f > s, "8-cycle latency {f} should beat 32-cycle {s}");
    }

    #[test]
    fn bigger_caches_do_not_miss_more() {
        let commits = 4_000;
        let names = all_names();
        let small = run_suite(
            |c| c.cache_geometry(CacheConfig::new(16 * 1024, 2, 32, 1, 16)),
            commits,
        );
        let big = run_suite(
            |c| c.cache_geometry(CacheConfig::new(256 * 1024, 2, 32, 1, 16)),
            commits,
        );
        let sm = mean_over(&small, &names, |s| s.cache.load_miss_rate());
        let bg = mean_over(&big, &names, |s| s.cache.load_miss_rate());
        assert!(bg <= sm + 0.01, "256KB miss {bg} vs 16KB miss {sm}");
    }
}
