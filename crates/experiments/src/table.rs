//! Minimal fixed-width table rendering for experiment reports.

/// A simple text table with a header row and fixed-precision cells.
///
/// # Examples
///
/// ```
/// use rf_experiments::table::Table;
///
/// let mut t = Table::new(vec!["bench", "ipc"]);
/// t.row(vec!["tomcatv".to_owned(), format!("{:.2}", 2.77)]);
/// let s = t.render();
/// assert!(s.contains("tomcatv"));
/// assert!(s.contains("2.77"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<&str>) -> Self {
        Self { header: header.into_iter().map(str::to_owned).collect(), rows: Vec::new() }
    }

    /// Appends a row (short rows are padded with empty cells).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (RFC-4180-style quoting), for piping
    /// experiment data into external plotting tools.
    ///
    /// # Examples
    ///
    /// ```
    /// use rf_experiments::table::Table;
    ///
    /// let mut t = Table::new(vec!["bench", "ipc"]);
    /// t.row(vec!["a,b".to_owned(), "2.5".to_owned()]);
    /// assert_eq!(t.to_csv(), "bench,ipc\n\"a,b\",2.5\n");
    /// ```
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        }
        let mut out = String::new();
        for row in std::iter::once(&self.header).chain(self.rows.iter()) {
            let line: Vec<String> = row.iter().map(|c| field(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        }
        out
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate().take(cols) {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>width$}"));
            }
            line.trim_end().to_owned()
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(out.trim_end().len().min(100)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "longer"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["yy".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("longer"));
    }

    #[test]
    fn csv_quotes_special_fields() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["plain".into(), "has,comma".into()]);
        t.row(vec!["has\"quote".into(), "x".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "plain,\"has,comma\"");
        assert_eq!(lines[2], "\"has\"\"quote\",x");
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["1".into()]);
        assert!(t.render().lines().count() == 3);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 1);
    }
}
