//! Figure 4: average register-usage run-time coverage histograms under
//! both exception models, for both issue widths.
//!
//! Coverage curves are produced per benchmark from the per-cycle liveness
//! histograms, normalised by run time, averaged across benchmarks
//! (integer: all nine; FP: the FP-intensive six), and sampled at the
//! paper's x-axis points.

use crate::aggregate::{
    all_names, averaged_distribution, coverage_curve, distribution_percentile, sample_coverage,
};
use crate::runner::{fp_benchmarks, simulate_suite, RunSpec, Scale};
use crate::table::Table;
use rf_core::{LiveModel, SimStats};
use rf_isa::RegClass;

/// X-axis sample points, as in the paper's Figure 4.
pub const SAMPLE_POINTS: &[usize] = &[30, 45, 60, 75, 105, 150, 210, 300, 450];

/// The averaged coverage curves for one issue width.
#[derive(Debug, Clone)]
pub struct Curves {
    /// `curves[class][model]` = averaged run-time coverage curve.
    pub curves: [[Vec<f64>; 2]; 2],
}

/// Runs the simulations for one width and builds the averaged curves.
pub fn curves(width: usize, scale: &Scale) -> Curves {
    let base = RunSpec::baseline("compress", width).commits(scale.commits);
    let runs = simulate_suite(&base);
    let names = all_names();
    let fp_names = fp_benchmarks();
    let build = |class: RegClass, model: LiveModel| {
        let include = if class == RegClass::Int { &names } else { &fp_names };
        coverage_curve(&averaged_distribution(&runs, include, class, model))
    };
    Curves {
        curves: [RegClass::Int, RegClass::Fp].map(|class| {
            [LiveModel::Precise, LiveModel::Imprecise].map(|m| build(class, m))
        }),
    }
}

/// 90% coverage register counts from a set of curves:
/// `(int precise, int imprecise, fp precise, fp imprecise)`.
pub fn coverage90(c: &Curves) -> (usize, usize, usize, usize) {
    let pct = |curve: &[f64]| {
        curve.iter().position(|&v| v >= 90.0).unwrap_or(curve.len().saturating_sub(1))
    };
    (
        pct(&c.curves[0][0]),
        pct(&c.curves[0][1]),
        pct(&c.curves[1][0]),
        pct(&c.curves[1][1]),
    )
}

fn render(width: usize, c: &Curves) -> String {
    let mut out = format!("({width}-way issue processor)\n");
    let mut t = Table::new(vec![
        "regs",
        "int.precise%",
        "int.imprecise%",
        "fp.precise%",
        "fp.imprecise%",
    ]);
    let sampled: Vec<Vec<(usize, f64)>> = [
        &c.curves[0][0],
        &c.curves[0][1],
        &c.curves[1][0],
        &c.curves[1][1],
    ]
    .iter()
    .map(|curve| sample_coverage(curve, SAMPLE_POINTS))
    .collect();
    for (i, &p) in SAMPLE_POINTS.iter().enumerate() {
        t.row(vec![
            p.to_string(),
            format!("{:.1}", sampled[0][i].1),
            format!("{:.1}", sampled[1][i].1),
            format!("{:.1}", sampled[2][i].1),
            format!("{:.1}", sampled[3][i].1),
        ]);
    }
    out.push_str(&t.render());
    let (ip, ii, fp, fi) = coverage90(c);
    out.push_str(&format!(
        "90% coverage at: int precise {ip}, int imprecise {ii}, fp precise {fp}, fp imprecise {fi}\n",
    ));
    out
}

/// Runs Figure 4 for both widths and renders the report.
pub fn run(scale: &Scale) -> String {
    let mut out = String::from(
        "Figure 4: average register-usage run-time coverage, precise vs imprecise\n\
         (2048 registers, lockup-free cache, dq 32 / 64)\n\n",
    );
    out.push_str(&render(4, &curves(4, scale)));
    out.push('\n');
    out.push_str(&render(8, &curves(8, scale)));
    out
}

/// Convenience for tests: the 90th percentile of one run's distribution.
pub fn run_percentile(stats: &SimStats, class: RegClass, model: LiveModel) -> usize {
    distribution_percentile(&stats.live_distribution(class, model), 90.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imprecise_coverage_dominates_precise() {
        // At every register count, imprecise coverage >= precise coverage
        // (fewer registers live under imprecise freeing).
        let c = curves(4, &Scale { commits: 3_000 });
        for class in 0..2 {
            for (p, i) in c.curves[class][0].iter().zip(c.curves[class][1].iter()) {
                assert!(i + 1e-9 >= *p, "imprecise {i} < precise {p}");
            }
        }
    }
}
