//! Extension experiments beyond the paper's evaluation:
//!
//! 1. **Alpha-style hybrid exceptions** — the paper notes its imprecise
//!    model is a lower bound on hybrids like the Alpha architecture's
//!    (arithmetic imprecise, memory precise); this experiment adds the
//!    hybrid as a third curve to the Figure 6 register sweep.
//! 2. **Split dispatch queues** — the paper uses a single unified queue
//!    "because one queue is simpler"; this experiment quantifies what a
//!    two-queue organisation of the same total capacity costs.

use crate::aggregate::{all_names, mean_over};
use crate::runner::{RunSpec, Scale, SimPool};
use crate::table::Table;
use rf_core::{ExceptionModel, SimStats};
use std::sync::Arc;

fn run_suite(
    configure: impl Fn(RunSpec) -> RunSpec,
    commits: u64,
) -> Vec<(String, Arc<SimStats>)> {
    let names = all_names();
    let specs: Vec<RunSpec> = names
        .iter()
        .map(|n| configure(RunSpec::baseline(n, 4).commits(commits)))
        .collect();
    let stats = SimPool::from_env().run_many(&specs);
    names.into_iter().zip(stats).collect()
}

/// Runs both extension experiments and renders the report.
pub fn run(scale: &Scale) -> String {
    let names = all_names();
    let mut out = String::from("Extension experiments (4-way issue, dq 32)\n\n");

    out.push_str("Exception-model spectrum: average commit IPC vs register count\n");
    let mut t = Table::new(vec!["regs", "precise", "alpha-hybrid", "imprecise"]);
    for regs in [40usize, 48, 64, 80, 96, 128] {
        let mut row = vec![regs.to_string()];
        for model in
            [ExceptionModel::Precise, ExceptionModel::AlphaHybrid, ExceptionModel::Imprecise]
        {
            let runs = run_suite(|c| c.regs(regs).exceptions(model), scale.commits);
            row.push(format!("{:.2}", mean_over(&runs, &names, SimStats::commit_ipc)));
        }
        t.row(row);
    }
    out.push_str(&t.render());

    out.push_str("\nBounded reorder buffer (active-list capacity): average commit IPC\n");
    let mut t = Table::new(vec!["rob", "avg commit IPC"]);
    for rob in [32usize, 64, 128] {
        let runs = run_suite(|c| c.reorder(rob), scale.commits);
        t.row(vec![
            rob.to_string(),
            format!("{:.2}", mean_over(&runs, &names, SimStats::commit_ipc)),
        ]);
    }
    let unbounded = run_suite(|c| c, scale.commits);
    t.row(vec![
        "unbounded".to_owned(),
        format!("{:.2}", mean_over(&unbounded, &names, SimStats::commit_ipc)),
    ]);
    out.push_str(&t.render());

    out.push_str("\nUnified vs split dispatch queues: average commit IPC\n");
    let mut t = Table::new(vec!["dq(total)", "unified", "split"]);
    for dq in [16usize, 32, 64] {
        let unified = run_suite(|c| c.dq(dq), scale.commits);
        let split = run_suite(|c| c.dq(dq).split_dq(true), scale.commits);
        t.row(vec![
            dq.to_string(),
            format!("{:.2}", mean_over(&unified, &names, SimStats::commit_ipc)),
            format!("{:.2}", mean_over(&split, &names, SimStats::commit_ipc)),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_mentions_all_three_models() {
        let report = run(&Scale { commits: 1_500 });
        assert!(report.contains("alpha-hybrid"));
        assert!(report.contains("split"));
    }
}
