//! Ablations of the machine-model design choices called out in DESIGN.md:
//! the scheduler's selection policy (greedy oldest-first vs
//! youngest-first), the branch predictor (bimodal / gshare / the paper's
//! combining predictor), and the dispatch-queue insertion bandwidth (the
//! paper's 1.5x issue width vs 1.0x and 2.0x).

use crate::aggregate::{all_names, mean_over};
use crate::runner::{RunSpec, Scale, SimPool};
use crate::table::Table;
use rf_bpred::PredictorKind;
use rf_core::{SchedPolicy, SimStats};
use std::sync::Arc;

fn run_suite(
    configure: impl Fn(RunSpec) -> RunSpec,
    commits: u64,
) -> Vec<(String, Arc<SimStats>)> {
    let names = all_names();
    let specs: Vec<RunSpec> = names
        .iter()
        .map(|n| configure(RunSpec::baseline(n, 4).commits(commits)))
        .collect();
    let stats = SimPool::from_env().run_many(&specs);
    names.into_iter().zip(stats).collect()
}

/// Runs both ablations and renders the report.
pub fn run(scale: &Scale) -> String {
    let names = all_names();
    let mut out = String::from(
        "Ablations (4-way issue, dq 32, 2048 registers, lockup-free cache)\n\n",
    );

    out.push_str("Scheduler selection policy\n");
    let mut t = Table::new(vec!["policy", "avg issue IPC", "avg commit IPC"]);
    for policy in [SchedPolicy::OldestFirst, SchedPolicy::YoungestFirst] {
        let runs = run_suite(|c| c.policy(policy), scale.commits);
        t.row(vec![
            policy.to_string(),
            format!("{:.2}", mean_over(&runs, &names, SimStats::issue_ipc)),
            format!("{:.2}", mean_over(&runs, &names, SimStats::commit_ipc)),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\nBranch predictor (paper: McFarling combining, 12 Kbit)\n");
    let mut t = Table::new(vec!["predictor", "avg mispredict %", "avg commit IPC"]);
    for kind in [PredictorKind::Bimodal, PredictorKind::Gshare, PredictorKind::Combining] {
        let runs = run_suite(|c| c.predictor(kind), scale.commits);
        t.row(vec![
            kind.to_string(),
            format!("{:.1}", 100.0 * mean_over(&runs, &names, SimStats::mispredict_rate)),
            format!("{:.2}", mean_over(&runs, &names, SimStats::commit_ipc)),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\nDispatch-queue insertion bandwidth (paper: 1.5 x width = 6)\n");
    let mut t = Table::new(vec!["insert/cycle", "avg commit IPC", "avg dq occupancy"]);
    for bw in [4usize, 6, 8] {
        let runs = run_suite(|c| c.insert_bw(bw), scale.commits);
        t.row(vec![
            bw.to_string(),
            format!("{:.2}", mean_over(&runs, &names, SimStats::commit_ipc)),
            format!("{:.1}", mean_over(&runs, &names, SimStats::mean_dq_occupancy)),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oldest_first_commits_at_least_as_fast() {
        let commits = 8_000;
        let old = run_suite(|c| c.policy(SchedPolicy::OldestFirst), commits);
        let young = run_suite(|c| c.policy(SchedPolicy::YoungestFirst), commits);
        let names = all_names();
        let o = mean_over(&old, &names, SimStats::commit_ipc);
        let y = mean_over(&young, &names, SimStats::commit_ipc);
        assert!(o >= y * 0.98, "oldest-first {o} vs youngest-first {y}");
    }

    #[test]
    fn wider_insertion_never_hurts_much() {
        let commits = 6_000;
        let narrow = run_suite(|c| c.insert_bw(4), commits);
        let wide = run_suite(|c| c.insert_bw(8), commits);
        let names = all_names();
        let n = mean_over(&narrow, &names, SimStats::commit_ipc);
        let w = mean_over(&wide, &names, SimStats::commit_ipc);
        assert!(w >= n * 0.97, "wide {w} vs narrow {n}");
    }
}
