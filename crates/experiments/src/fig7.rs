//! Figure 7: average commit IPC for the three data-cache organisations
//! (perfect, lockup-free, lockup) as the register-file size varies, for
//! both widths; panel (a) imprecise exceptions, panel (b) precise.

use crate::aggregate::{all_names, mean_over};
use crate::fig6::REG_SIZES;
use crate::runner::{RunSpec, Scale, SimPool};
use crate::table::Table;
use rf_core::{ExceptionModel, SimStats};
use rf_mem::CacheOrg;

/// The three organisations in the paper's legend order.
pub const ORGS: &[CacheOrg] = &[CacheOrg::Perfect, CacheOrg::LockupFree, CacheOrg::Lockup];

/// One cache organisation's IPC series over the register sweep.
pub type OrgSeries = (CacheOrg, Vec<(usize, f64)>);

/// Average commit IPC per (org, register count) for one width and model.
/// The (org x register count x benchmark) grid runs as one parallel
/// batch; the lockup-free series re-uses Figure 6's cached points.
pub fn sweep(width: usize, model: ExceptionModel, scale: &Scale) -> Vec<OrgSeries> {
    let names = all_names();
    let mut specs = Vec::new();
    for &org in ORGS {
        for &regs in REG_SIZES {
            for n in &names {
                specs.push(
                    RunSpec::baseline(n, width)
                        .regs(regs)
                        .exceptions(model)
                        .cache(org)
                        .commits(scale.commits),
                );
            }
        }
    }
    let stats = SimPool::from_env().run_many(&specs);
    let per_org = REG_SIZES.len() * names.len();
    ORGS.iter()
        .zip(stats.chunks(per_org))
        .map(|(&org, org_chunk)| {
            let series = REG_SIZES
                .iter()
                .zip(org_chunk.chunks(names.len()))
                .map(|(&regs, chunk)| {
                    let runs: Vec<_> =
                        names.iter().cloned().zip(chunk.iter().cloned()).collect();
                    (regs, mean_over(&runs, &names, SimStats::commit_ipc))
                })
                .collect();
            (org, series)
        })
        .collect()
}

fn render_panel(label: &str, model: ExceptionModel, scale: &Scale) -> String {
    let mut out = format!("({label}) {model} exception model\n");
    for width in [4usize, 8] {
        let data = sweep(width, model, scale);
        let mut t = Table::new(vec!["regs", "perfect", "lockup-free", "lockup"]);
        for (i, &regs) in REG_SIZES.iter().enumerate() {
            t.row(vec![
                regs.to_string(),
                format!("{:.2}", data[0].1[i].1),
                format!("{:.2}", data[1].1[i].1),
                format!("{:.2}", data[2].1[i].1),
            ]);
        }
        out.push_str(&format!("\n{width}-way issue (dq {})\n", width * 8));
        out.push_str(&t.render());
    }
    out
}

/// Runs Figure 7 (both panels) and renders the report.
pub fn run(scale: &Scale) -> String {
    let mut out = String::from(
        "Figure 7: average commit IPC for three data cache organisations\n\n",
    );
    out.push_str(&render_panel("a", ExceptionModel::Imprecise, scale));
    out.push('\n');
    out.push_str(&render_panel("b", ExceptionModel::Precise, scale));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::simulate;

    #[test]
    fn cache_quality_orders_performance() {
        // On a miss-heavy benchmark: perfect >= lockup-free > lockup.
        let commits = 10_000;
        let mk = |org| {
            simulate(
                &RunSpec::baseline("tomcatv", 4).regs(96).cache(org).commits(commits),
            )
            .commit_ipc()
        };
        let perfect = mk(CacheOrg::Perfect);
        let lockup_free = mk(CacheOrg::LockupFree);
        let lockup = mk(CacheOrg::Lockup);
        assert!(perfect >= lockup_free * 0.98, "perfect {perfect} vs lf {lockup_free}");
        assert!(
            lockup_free > lockup * 1.3,
            "lockup-free {lockup_free} should clearly beat lockup {lockup}"
        );
    }
}
