//! Scratch diagnostic (ignored): prints per-bench summary terms.
use rf_bpred::PredictorKind;
use rf_isa::IssueClass;
use rf_mem::{CacheConfig, CacheOrg};

#[test]
#[ignore]
fn dump_summaries() {
    for bench in
        ["compress", "espresso", "gcc1", "doduc", "mdljdp2", "mdljsp2", "ora", "su2cor", "tomcatv"]
    {
        for width in [4usize, 8] {
            let ibw = width + width / 2;
            let commits = std::env::var("RF_COMMITS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(2_000);
            let s = rf_model::summarize(
                bench,
                commits,
                12,
                ibw,
                CacheConfig::baseline(),
                CacheOrg::LockupFree,
                PredictorKind::Combining,
            )
            .unwrap();
            let n = s.stats.oracle.instructions as f64;
            let ideal_ipc = n / s.stats.oracle.ideal_cycles.max(1) as f64;
            println!(
                "{bench} w{width}: ideal_ipc {ideal_ipc:.2} unbounded {:.2} w32 {:.2} w64 {:.2} mis {:.3} missrate {:.3} mldelay {:.1} mlp {:.2} br_frac {:.3} ld_frac {:.3} mem_frac {:.3}",
                s.stats.unbounded_ipc,
                s.stats.window_ipc(32.0),
                s.stats.window_ipc(64.0),
                s.mispredict_rate,
                s.load_miss_rate,
                s.mean_load_delay,
                s.mean_mlp,
                s.stats.class_fraction(IssueClass::ControlFlow),
                s.stats.kind_fraction(rf_isa::OpKind::Load),
                s.stats.class_fraction(IssueClass::Memory),
            );
            for class in rf_isa::RegClass::ALL {
                let c = &s.stats.oracle.classes[class.index()];
                println!(
                    "  {class:?}: cats {:.1}/{:.1}/{:.1} demand {} floor {} def_frac {:.3} span {:.1}",
                    c.ideal_cat_means[0],
                    c.ideal_cat_means[1],
                    c.ideal_cat_means[2],
                    c.ideal_demand,
                    c.floor,
                    s.stats.def_fraction(class),
                    c.mean_def_use_span,
                );
            }
            println!("  ladder {:?}", s.stats.windowed_ipc.map(|v| (v * 100.0).round() / 100.0));
            println!(
                "  cbr {:.3} fpdiv {:.4} svc_div {:.1}",
                s.stats.kind_fraction(rf_isa::OpKind::CondBranch),
                s.stats.class_fraction(IssueClass::FpDivide),
                s.stats.mean_service(IssueClass::FpDivide),
            );
        }
    }
}
