//! Property-based contracts of the analytic model: over random machine
//! shapes, seeds, and perturbed workload profiles, the predicted IPC
//! must be monotone in the resources the paper sweeps (issue width,
//! physical registers), and every register-pressure estimate must sit
//! inside the static oracle's sound `[floor, ceiling]` bracket.
//!
//! These are the properties `rfstudy model --check` leans on: the
//! prefilter prunes *larger* register files on the strength of
//! monotonicity, and the `--check` gate asserts the bracket per config.
//! A calibration change that breaks either should fail here, on
//! synthetic shapes, before it reaches the 72-config matrix.

use proptest::prelude::*;
use rf_bpred::PredictorKind;
use rf_core::{ExceptionModel, MachineConfig};
use rf_isa::RegClass;
use rf_mem::{CacheConfig, CacheOrg};
use rf_model::{evaluate, summarize_profile, WorkloadSummary};
use rf_workload::{spec92, BenchmarkProfile};

/// A random workload: one of the paper's nine profiles with its
/// dependence and branch structure perturbed inside meaningful ranges,
/// so the properties hold for the *model*, not for nine lucky points.
fn perturbed(
    bench_idx: usize,
    mean_dist: f64,
    two_src_frac: f64,
    bias: f64,
    mean_trip: f64,
) -> BenchmarkProfile {
    let mut profile = spec92::all()[bench_idx].clone();
    profile.deps.mean_dist = mean_dist;
    profile.deps.two_src_frac = two_src_frac;
    profile.branch.bias = bias;
    profile.branch.mean_trip = mean_trip;
    profile
}

fn machine(width: usize, dq: usize, regs: usize, precise: bool) -> MachineConfig {
    MachineConfig::new(width).dispatch_queue(dq).physical_regs(regs).exceptions(if precise {
        ExceptionModel::Precise
    } else {
        ExceptionModel::Imprecise
    })
}

/// Extracts the summary at the machine's effective insert bandwidth —
/// the same protocol `rfstudy model` follows.
fn summary_for(profile: &BenchmarkProfile, commits: u64, seed: u64, config: &MachineConfig) -> WorkloadSummary {
    summarize_profile(
        profile,
        &profile.name,
        commits,
        seed,
        config.effective_insert_bandwidth(),
        CacheConfig::baseline(),
        CacheOrg::LockupFree,
        PredictorKind::Combining,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// More physical registers never cost predicted throughput: the
    /// register term only ever widens the effective window. This is the
    /// exact monotonicity the sweep prefilter banks on when it prunes
    /// register files above the saturation point.
    #[test]
    fn ipc_non_decreasing_in_phys_regs(
        bench_idx in 0usize..9,
        mean_dist in 2.0f64..12.0,
        two_src_frac in 0.1f64..0.9,
        bias in 0.55f64..0.95,
        mean_trip in 4.0f64..40.0,
        width in prop::sample::select(vec![1usize, 2, 4, 6, 8, 10]),
        dq in prop::sample::select(vec![8usize, 16, 32, 64, 128]),
        regs in 32usize..512,
        extra in 1usize..1536,
        precise in any::<bool>(),
        seed in 0u64..100,
        commits in 1_000u64..3_000,
    ) {
        let profile = perturbed(bench_idx, mean_dist, two_src_frac, bias, mean_trip);
        let base = machine(width, dq, regs, precise);
        let summary = summary_for(&profile, commits, seed, &base);
        let starved = evaluate(&summary, &base);
        let roomy = evaluate(&summary, &machine(width, dq, regs + extra, precise));
        prop_assert!(
            roomy.ipc >= starved.ipc,
            "regs {} -> {} dropped IPC {} -> {} ({} w{width} dq{dq})",
            regs, regs + extra, starved.ipc, roomy.ipc, profile.name
        );
    }

    /// A wider machine never predicts lower throughput, with each
    /// width's summary extracted at its own effective insert bandwidth
    /// (the full `rfstudy model` protocol, not a shared-summary
    /// shortcut).
    #[test]
    fn ipc_non_decreasing_in_width(
        bench_idx in 0usize..9,
        mean_dist in 2.0f64..12.0,
        two_src_frac in 0.1f64..0.9,
        bias in 0.55f64..0.95,
        mean_trip in 4.0f64..40.0,
        width in 1usize..8,
        delta in 1usize..4,
        dq in prop::sample::select(vec![16usize, 32, 64, 128]),
        regs in prop::sample::select(vec![48usize, 64, 128, 512, 2048]),
        precise in any::<bool>(),
        seed in 0u64..100,
        commits in 1_000u64..3_000,
    ) {
        let profile = perturbed(bench_idx, mean_dist, two_src_frac, bias, mean_trip);
        let narrow_cfg = machine(width, dq, regs, precise);
        let wide_cfg = machine(width + delta, dq, regs, precise);
        let narrow = evaluate(&summary_for(&profile, commits, seed, &narrow_cfg), &narrow_cfg);
        let wide = evaluate(&summary_for(&profile, commits, seed, &wide_cfg), &wide_cfg);
        prop_assert!(
            wide.ipc >= narrow.ipc - 1e-9,
            "width {} -> {} dropped IPC {} -> {} ({} dq{dq} regs{regs})",
            width, width + delta, narrow.ipc, wide.ipc, profile.name
        );
    }

    /// Every predicted per-class register peak lies inside the static
    /// oracle's `[floor, ceiling]` bracket — the same soundness bracket
    /// the simulator itself is cross-validated against.
    #[test]
    fn regs_peak_stays_inside_the_oracle_bracket(
        bench_idx in 0usize..9,
        mean_dist in 2.0f64..12.0,
        two_src_frac in 0.1f64..0.9,
        bias in 0.55f64..0.95,
        mean_trip in 4.0f64..40.0,
        width in prop::sample::select(vec![1usize, 2, 4, 8, 10]),
        dq in prop::sample::select(vec![8usize, 32, 128]),
        regs in 32usize..2048,
        precise in any::<bool>(),
        seed in 0u64..100,
        commits in 1_000u64..3_000,
    ) {
        let profile = perturbed(bench_idx, mean_dist, two_src_frac, bias, mean_trip);
        let config = machine(width, dq, regs, precise);
        let summary = summary_for(&profile, commits, seed, &config);
        let estimate = evaluate(&summary, &config);
        for class in RegClass::ALL {
            let c = &summary.stats.oracle.classes[class.index()];
            let ceiling = summary.stats.oracle.upper_bound(class, regs, 0);
            let peak = estimate.regs_peak[class.index()];
            prop_assert!(
                peak >= c.floor.min(ceiling) && peak <= ceiling,
                "{:?} peak {peak} outside [{}, {ceiling}] ({} w{width} regs{regs})",
                class, c.floor.min(ceiling), profile.name
            );
        }
    }
}
