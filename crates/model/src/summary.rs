//! Workload summarisation: everything the analytic model needs to know
//! about a benchmark, computed once per (benchmark, commits, seed,
//! insert-bandwidth) and reusable across every machine shape sharing
//! those parameters.
//!
//! Three schedule-independent replays over the same committed prefix
//! the simulator would commit:
//!
//! * the static oracle + dataflow sweeps of
//!   [`rf_check::wstats::workload_stats`];
//! * an in-order branch-predictor replay (predict, speculate, recover
//!   on mispredict, train — the committed-path protocol of the real
//!   pipeline) yielding the misprediction rate;
//! * an in-order data-cache replay at a fixed canonical pace yielding
//!   the load miss rate, mean load-to-use delay, and the mean number of
//!   overlapping fills (the memory-level-parallelism divisor).
//!
//! The cache replay is paced at a *fixed* [`CACHE_PACE`] rather than
//! the machine's insert bandwidth so its outputs do not depend on issue
//! width — which keeps every [`evaluate`](crate::evaluate) input either
//! width-independent or provably monotone in width.

use rf_bpred::{AnyPredictor, PredictorKind, PredictorStats};
use rf_check::wstats::{workload_stats, WorkloadStats};
use rf_isa::{Instruction, OpKind};
use rf_mem::{CacheConfig, CacheOrg, DataCache};
use rf_workload::{spec92, BenchmarkProfile, TraceGenerator};

/// Canonical pace (instructions per cycle) of the cache replay.
pub const CACHE_PACE: u64 = 4;

/// A schedule-independent summary of one workload prefix: the inputs of
/// [`evaluate`](crate::evaluate).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSummary {
    /// Benchmark name the prefix was generated from.
    pub bench: String,
    /// Committed instructions summarised.
    pub commits: u64,
    /// Trace-generator seed.
    pub seed: u64,
    /// Insert bandwidth pacing the oracle's ideal schedule.
    pub insert_bw: usize,
    /// Static oracle, kind mix, and windowed dataflow limits.
    pub stats: WorkloadStats,
    /// Conditional-branch misprediction rate of the replayed predictor.
    pub mispredict_rate: f64,
    /// Load miss rate of the replayed data cache (0 for a perfect
    /// cache).
    pub load_miss_rate: f64,
    /// Mean cycles from load issue to register write in the replay.
    pub mean_load_delay: f64,
    /// Mean overlapping fills observed when a miss issues (>= 1 when
    /// any miss occurred; the MLP divisor of the miss-stall term).
    pub mean_mlp: f64,
}

/// Summarises the first `commits` committed instructions of `bench`.
///
/// `cache` and `org` select the memory system to replay (pass
/// [`CacheOrg::Perfect`] to model an always-hit memory), `predictor`
/// the branch predictor. Returns `None` for an unknown benchmark name.
pub fn summarize(
    bench: &str,
    commits: u64,
    seed: u64,
    insert_bw: usize,
    cache: CacheConfig,
    org: CacheOrg,
    predictor: PredictorKind,
) -> Option<WorkloadSummary> {
    let profile = spec92::by_name(bench)?;
    Some(summarize_profile(&profile, bench, commits, seed, insert_bw, cache, org, predictor))
}

/// [`summarize`] for an explicit profile (used by property tests with
/// perturbed profiles).
#[allow(clippy::too_many_arguments)]
pub fn summarize_profile(
    profile: &BenchmarkProfile,
    bench: &str,
    commits: u64,
    seed: u64,
    insert_bw: usize,
    cache: CacheConfig,
    org: CacheOrg,
    predictor: PredictorKind,
) -> WorkloadSummary {
    let insts: Vec<Instruction> =
        TraceGenerator::new(profile, seed).take(commits as usize).collect();
    let stats = workload_stats(&insts, insert_bw);
    let mispredict_rate = replay_predictor(&insts, predictor);
    let (load_miss_rate, mean_load_delay, mean_mlp) = replay_cache(&insts, cache, org);
    WorkloadSummary {
        bench: bench.to_string(),
        commits,
        seed,
        insert_bw,
        stats,
        mispredict_rate,
        load_miss_rate,
        mean_load_delay,
        mean_mlp,
    }
}

/// In-order committed-path replay of the branch predictor: the same
/// predict / speculate / recover / train protocol the pipeline applies,
/// minus wrong-path pollution (which the real machine's recovery also
/// undoes).
fn replay_predictor(insts: &[Instruction], kind: PredictorKind) -> f64 {
    let mut predictor = AnyPredictor::new(kind);
    let mut stats = PredictorStats::new();
    for inst in insts {
        if inst.kind() != OpKind::CondBranch {
            continue;
        }
        let prediction = predictor.predict(inst.pc());
        let checkpoint = predictor.speculate(prediction.taken());
        if prediction.taken() != inst.taken() {
            predictor.recover(checkpoint, inst.taken());
        }
        predictor.train(inst.pc(), prediction, inst.taken());
        stats.record(prediction.taken(), inst.taken());
    }
    stats.misprediction_rate()
}

/// In-order data-cache replay at the canonical pace. Returns
/// `(load_miss_rate, mean_load_delay, mean_mlp)`.
fn replay_cache(insts: &[Instruction], config: CacheConfig, org: CacheOrg) -> (f64, f64, f64) {
    let mut cache = DataCache::new(config, org);
    let mut delay_sum = 0u64;
    let mut loads = 0u64;
    let mut mlp_sum = 0u64;
    let mut misses = 0u64;
    for (i, inst) in insts.iter().enumerate() {
        let now = i as u64 / CACHE_PACE;
        let _ = cache.drain_fills(now);
        let Some(mem) = inst.mem() else { continue };
        // A locked-up cache delays the access to its unlock cycle; the
        // extra wait counts toward the observed load delay.
        let start = if cache.can_accept(now) { now } else { cache.next_accept_cycle().max(now) };
        match inst.kind() {
            OpKind::Load => {
                let result = cache.load(mem.addr(), start, i as u64);
                delay_sum += result.complete_at() - now;
                loads += 1;
                if !result.hit() {
                    misses += 1;
                    mlp_sum += cache.outstanding_fills().max(1) as u64;
                }
            }
            OpKind::Store => cache.store(mem.addr(), start),
            _ => {}
        }
    }
    let miss_rate = cache.stats().load_miss_rate();
    let mean_delay = if loads > 0 { delay_sum as f64 / loads as f64 } else { 0.0 };
    let mean_mlp = if misses > 0 { (mlp_sum as f64 / misses as f64).max(1.0) } else { 1.0 };
    (miss_rate, mean_delay, mean_mlp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(bench: &str, org: CacheOrg) -> WorkloadSummary {
        summarize(bench, 5_000, 12, 6, CacheConfig::baseline(), org, PredictorKind::Combining)
            .expect("known bench")
    }

    #[test]
    fn unknown_bench_is_none() {
        assert!(summarize(
            "nope",
            100,
            12,
            6,
            CacheConfig::baseline(),
            CacheOrg::Perfect,
            PredictorKind::Combining
        )
        .is_none());
    }

    #[test]
    fn perfect_cache_never_misses() {
        let s = quick("compress", CacheOrg::Perfect);
        assert_eq!(s.load_miss_rate, 0.0);
        assert_eq!(s.mean_mlp, 1.0);
        // Hit latency (1) + the load-delay slot.
        assert!((s.mean_load_delay - 2.0).abs() < 1e-9, "{}", s.mean_load_delay);
    }

    #[test]
    fn realistic_cache_misses_and_overlaps() {
        let s = quick("compress", CacheOrg::LockupFree);
        assert!(s.load_miss_rate > 0.0, "compress misses in a 64KB cache");
        assert!(s.load_miss_rate < 0.5);
        assert!(s.mean_load_delay >= 2.0);
        assert!(s.mean_mlp >= 1.0);
    }

    #[test]
    fn mispredict_rate_is_sane() {
        let s = quick("espresso", CacheOrg::Perfect);
        assert!(s.mispredict_rate > 0.0 && s.mispredict_rate < 0.5, "{}", s.mispredict_rate);
        assert_eq!(s.commits, 5_000);
        assert_eq!(s.stats.oracle.instructions, 5_000);
    }
}
