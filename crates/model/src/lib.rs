//! `rf-model`: a static analytic estimator for the rfstudy machine.
//!
//! The simulator answers the paper's sizing questions by running every
//! configuration cycle by cycle. This crate answers the same questions
//! *analytically*, in microseconds: given a machine shape
//! ([`rf_core::MachineConfig`]) and a schedule-independent summary of
//! the workload ([`WorkloadSummary`]), [`evaluate`] predicts committed
//! IPC, functional-unit and dispatch-queue occupancy, and the mean /
//! peak register pressure, without executing a single simulated cycle.
//!
//! The model is an M/G/c-flavoured bound hierarchy in the style of
//! Carroll & Lin (arXiv 1807.08586): throughput is the minimum of the
//! issue-width, insert-bandwidth, dataflow-critical-path, finite-window
//! and per-pool service bounds, then degraded by additive CPI
//! corrections for branch mispredictions and cache-miss stalls (the
//! memory-level-parallelism divisor follows Diavastos & Carlson, arXiv
//! 2109.03112). Register pressure comes from Little's law over the
//! static oracle's lifetime decomposition ([`rf_check::oracle`]), and
//! every peak estimate is clamped into the oracle's sound
//! `[floor, ceiling]` bracket, so the cross-validation gate of
//! `rfstudy model --check` holds by construction.
//!
//! [`prefilter`] reuses the same machinery to let sweep harnesses skip
//! register-file sizes the model proves saturated (`RF_PREFILTER=1`):
//! once every class's ideal-schedule demand plus a wrong-path margin
//! fits, larger register files are predicted — and observed — to change
//! nothing.

pub mod estimate;
pub mod prefilter;
pub mod summary;

pub use estimate::{evaluate, ModelEstimate};
pub use prefilter::{demand_profile, plan_regs_sweep, saturation_regs};
pub use summary::{summarize, summarize_profile, WorkloadSummary};
