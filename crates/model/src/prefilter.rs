//! Sweep pre-filtering: skip register-file sizes the model proves
//! saturated.
//!
//! A register sweep (the paper's Figures 3–7 walk 64 → 2048 physical
//! registers) spends most of its simulation time on the flat tail of
//! the curve: once the file holds every register the ideal schedule can
//! keep live — plus a margin for wrong-path allocations — the headline
//! numbers stop changing. [`demand_profile`] computes that demand from
//! the static oracle alone (one pass, no dataflow sweeps),
//! [`saturation_regs`] adds the wrong-path margin, and
//! [`plan_regs_sweep`] partitions a sweep group into one
//! *representative* saturated point (which is simulated) and the
//! *pruned* saturated points (whose results are substituted from the
//! representative). Points below the saturation threshold are always
//! simulated.
//!
//! Pruned points are estimates, not measurements: the substitution is
//! exact only insofar as the saturation argument holds, which is why
//! the harnesses record pruned counts in their reports and the ledger.

use rf_check::oracle;
use rf_isa::Instruction;
use rf_workload::{spec92, TraceGenerator};

/// Wrong-path register margin per unit of issue width: inserted but
/// never-committed instructions can each hold one register, and the
/// front end runs at most a squash-shadow's worth of them ahead.
const MARGIN_PER_WIDTH: usize = 8;

/// Per-class ideal-schedule peak register demand (including the 31
/// architectural mappings) of the first `commits` instructions of
/// `bench`, paced at `insert_bw`. One oracle pass — cheap enough to run
/// once per sweep group. Returns `None` for an unknown benchmark.
pub fn demand_profile(
    bench: &str,
    commits: u64,
    seed: u64,
    insert_bw: usize,
) -> Option<[usize; 2]> {
    let profile = spec92::by_name(bench)?;
    let insts: Vec<Instruction> =
        TraceGenerator::new(&profile, seed).take(commits as usize).collect();
    let o = oracle::analyze(&insts, insert_bw);
    Some([o.classes[0].ideal_demand, o.classes[1].ideal_demand])
}

/// The smallest per-class register-file size at which the model
/// declares the file saturated for a machine of the given width: the
/// worst class's ideal-schedule demand plus a wrong-path margin.
pub fn saturation_regs(demand: [usize; 2], width: usize) -> usize {
    let peak = demand[0].max(demand[1]);
    peak + MARGIN_PER_WIDTH * width.max(1)
}

/// Partitions one sweep group (configurations identical except for
/// their register-file size) into a simulated representative and
/// pruned points.
///
/// `regs[i]` is the register count of group member `i`. Members at or
/// above `threshold` are saturated; the smallest saturated member
/// becomes the representative and every *other* saturated member is
/// pruned (its result substituted from the representative's). Returns
/// `None` when fewer than two members are saturated — nothing to
/// prune.
pub fn plan_regs_sweep(regs: &[usize], threshold: usize) -> Option<(usize, Vec<usize>)> {
    let representative = regs
        .iter()
        .enumerate()
        .filter(|&(_, &r)| r >= threshold)
        .min_by_key(|&(_, &r)| r)
        .map(|(i, _)| i)?;
    let pruned: Vec<usize> = regs
        .iter()
        .enumerate()
        .filter(|&(i, &r)| r >= threshold && i != representative)
        .map(|(i, _)| i)
        .collect();
    if pruned.is_empty() {
        return None;
    }
    Some((representative, pruned))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_profile_knows_the_benches() {
        let d = demand_profile("compress", 2_000, 12, 6).expect("known bench");
        assert!(d[0] >= 31, "int demand includes the architectural mappings: {d:?}");
        assert!(demand_profile("nope", 2_000, 12, 6).is_none());
    }

    #[test]
    fn saturation_threshold_scales_with_width() {
        assert!(saturation_regs([80, 40], 8) > saturation_regs([80, 40], 4));
        assert_eq!(saturation_regs([80, 40], 4), 80 + 32);
    }

    #[test]
    fn plan_keeps_the_smallest_saturated_point() {
        // 64 and 80 are below threshold; 128 is the representative,
        // 256 and 2048 are pruned.
        let (rep, pruned) = plan_regs_sweep(&[64, 80, 128, 256, 2048], 100).expect("plannable");
        assert_eq!(rep, 2);
        assert_eq!(pruned, vec![3, 4]);
    }

    #[test]
    fn plan_declines_degenerate_groups() {
        // Only one saturated point: nothing to prune.
        assert!(plan_regs_sweep(&[64, 128], 100).is_none());
        // Nothing saturated at all.
        assert!(plan_regs_sweep(&[40, 48, 64], 100).is_none());
        // Order independence: representative is by value, not position.
        let (rep, pruned) = plan_regs_sweep(&[2048, 128, 256], 100).expect("plannable");
        assert_eq!(rep, 1);
        assert_eq!(pruned, vec![0, 2]);
    }
}
