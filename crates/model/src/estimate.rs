//! The analytic estimator: a bound hierarchy plus CPI corrections.
//!
//! Throughput is `min` over independent capacity bounds — issue width,
//! insert bandwidth, the oracle's ideal-schedule IPC, the finite-window
//! dataflow limit at the machine's *effective* window, and each
//! functional-unit pool's M/G/c saturation point — then degraded by
//! additive CPI terms for branch-misprediction squashes and cache-miss
//! stalls. Every term is non-decreasing in issue width and physical
//! register count by construction, which is what the property tests
//! assert.
//!
//! Register pressure falls out of Little's law: the oracle's
//! reg-cycle sums per liveness category are schedule-independent, so
//! mean live counts at the predicted IPC are the ideal-schedule means
//! scaled by `ipc / ideal_ipc`. Peak demand is the ideal-schedule peak
//! clamped into the oracle's sound `[floor, ceiling]` bracket.

use crate::summary::WorkloadSummary;
use rf_core::{ExceptionModel, MachineConfig};
use rf_isa::{IssueClass, OpKind, RegClass};

/// Calibration constants, fitted against the simulator over the
/// 72-configuration cross-validation matrix (`rfstudy model --check`).
mod tune {
    /// Effective in-flight window per dispatch-queue entry. Fitted
    /// below 1: head-of-line blocking means the queue rarely sustains
    /// its full nominal size of distinct in-flight instructions.
    pub const K_DQ: f64 = 0.9;
    /// Registers per class reserved beyond the 31 architectural
    /// mappings under precise exceptions: superseded committed values
    /// whose free waits for the redefining instruction's in-order
    /// commit (the paper's category-3 occupancy).
    pub const R_PRECISE: f64 = 18.5;
    /// Same reservation under imprecise exceptions, where frees happen
    /// at the redefiner's completion and the lag is shorter.
    pub const R_IMPRECISE: f64 = 14.5;
    /// Mispredicted-branch penalty per cycle of mean load-completion
    /// delay. The sim resolves a branch only once its (often load-fed)
    /// operands arrive, so the effective squash-plus-refill cost
    /// tracks how slowly loads complete: cold caches (long delays)
    /// make every misprediction dearer.
    pub const K_BR_DELAY: f64 = 1.6;
    /// Fraction of a missing load's mean completion delay that
    /// survives as commit stall after out-of-order overlap (before the
    /// MLP divisor).
    pub const K_MISS: f64 = 0.6;
    /// Exponent on the distant-ILP boost to memory-level parallelism:
    /// workloads whose unbounded dataflow IPC far exceeds their
    /// 32-entry-window IPC (streaming codes like tomcatv) keep issuing
    /// independent work past outstanding misses, so their effective
    /// MLP grows with that headroom; dependence-bound codes (ratio
    /// near 1) get no boost.
    pub const K_ILP: f64 = 0.9;
}

/// The model's prediction for one machine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelEstimate {
    /// Predicted committed IPC.
    pub ipc: f64,
    /// Utilisation of the busiest functional-unit pool, in `[0, 1]`.
    pub fu_occupancy: f64,
    /// Predicted mean dispatch-queue occupancy, in `[0, dq_size]`.
    pub dq_occupancy: f64,
    /// Mean registers (both classes, excluding the 31 architectural
    /// mappings per class) whose writer has committed and which await
    /// freeing.
    pub regs_live_committed: f64,
    /// Mean registers whose writer waits in the dispatch queue.
    pub regs_live_awaiting: f64,
    /// Mean registers whose writer is executing.
    pub regs_live_exec: f64,
    /// Predicted peak live registers per class (indexed by
    /// [`RegClass::index`]), clamped into the oracle's
    /// `[floor, ceiling]` bracket.
    pub regs_peak: [usize; 2],
}

/// Evaluates the analytic model for `config` against a workload
/// summary. Pure arithmetic over the summary — no simulation; the
/// summary must have been extracted at
/// `config.effective_insert_bandwidth()`.
pub fn evaluate(summary: &WorkloadSummary, config: &MachineConfig) -> ModelEstimate {
    let s = &summary.stats;
    let oracle = &s.oracle;
    let n = oracle.instructions as f64;
    if n == 0.0 {
        return ModelEstimate {
            ipc: 0.0,
            fu_occupancy: 0.0,
            dq_occupancy: 0.0,
            regs_live_committed: 0.0,
            regs_live_awaiting: 0.0,
            regs_live_exec: 0.0,
            regs_peak: [31, 31],
        };
    }
    let ideal_ipc = n / oracle.ideal_cycles.max(1) as f64;
    let width = config.width() as f64;
    let insert_bw = config.effective_insert_bandwidth() as f64;
    let limits = config.limits();

    // The effective instruction window: the dispatch queue sustains
    // K_DQ in-flight instructions per entry, the reorder limit (if
    // any) caps it outright, and each register class caps it at the
    // positions its spare registers can cover. "Spare" discounts both
    // the 31 architectural mappings and a reservation for superseded
    // committed values whose free lags their redefiner's commit
    // (larger under precise exceptions, where frees drain in order) —
    // every in-flight instruction that writes the class then needs one
    // register from what remains.
    let mut window = tune::K_DQ * config.dq_size() as f64;
    if let Some(limit) = config.reorder_capacity() {
        window = window.min(limit as f64);
    }
    let reserved = 31.0
        + match config.exception_model() {
            ExceptionModel::Precise => tune::R_PRECISE,
            _ => tune::R_IMPRECISE,
        };
    let spare = (config.phys_regs() as f64 - reserved).max(0.0);
    for class in RegClass::ALL {
        let def_frac = s.def_fraction(class);
        if def_frac > 1e-9 {
            window = window.min((spare / def_frac).max(1.0));
        }
    }
    let window_bound = s.window_ipc(window);

    // Per-pool M/G/c saturation: a pool of c units each busy s cycles
    // per instruction saturates at c / (f * s) committed IPC. Pipelined
    // units occupy their issue slot for one cycle; the non-pipelined
    // dividers for their full latency.
    let mut fu_bound = f64::INFINITY;
    for class in IssueClass::ALL {
        let frac = s.class_fraction(class);
        if frac <= 1e-12 {
            continue;
        }
        let service = if class == IssueClass::FpDivide { s.mean_service(class) } else { 1.0 };
        fu_bound = fu_bound.min(limits.limit(class) as f64 / (frac * service.max(1.0)));
    }

    let capacity_ipc =
        width.min(insert_bw).min(ideal_ipc).min(window_bound).min(fu_bound).max(1e-6);

    // Additive CPI corrections, both scaled by the replay-measured
    // mean load-completion delay: cold caches stretch it, warmed-up
    // caches shrink it, and both the branch-resolution and miss-stall
    // costs track it.
    let mut cpi = 1.0 / capacity_ipc;
    let load_delay = summary.mean_load_delay;
    let branch_frac = s.kind_fraction(OpKind::CondBranch);
    cpi += branch_frac * summary.mispredict_rate * tune::K_BR_DELAY * load_delay;
    // Memory-level parallelism: the overlap a lockup-free cache
    // achieves is set by how many missing loads the in-flight window
    // holds at once (the paced replay's MLP assumes an unbounded
    // window, so the window estimate is the binding one), boosted for
    // workloads with distant-ILP headroom that keeps independent work
    // flowing past outstanding misses.
    let load_frac = s.kind_fraction(OpKind::Load);
    let ilp_boost =
        (s.unbounded_ipc / s.window_ipc(32.0).max(1e-9)).max(1.0).powf(tune::K_ILP);
    let mlp = (window * load_frac * summary.load_miss_rate).max(1.0) * ilp_boost;
    cpi += load_frac * summary.load_miss_rate * load_delay * tune::K_MISS / mlp;
    let ipc = 1.0 / cpi;

    // Little's law: reg-cycles per category are schedule-independent,
    // so mean live counts scale with throughput relative to the ideal
    // schedule the oracle measured them under.
    let scale = ipc / ideal_ipc.max(1e-12);
    let cat_total = |cat: usize| -> f64 {
        oracle.classes.iter().map(|c| c.ideal_cat_means[cat]).sum::<f64>() * scale
    };
    let regs_live_awaiting = cat_total(0);
    let regs_live_exec = cat_total(1);
    let regs_live_committed = cat_total(2);

    // Queue occupancy: defs waiting to issue, de-rated to all
    // instructions by the def density.
    let def_frac_total: f64 = RegClass::ALL.iter().map(|&c| s.def_fraction(c)).sum();
    let dq_occupancy = if def_frac_total > 1e-9 {
        (regs_live_awaiting / def_frac_total).clamp(0.0, config.dq_size() as f64)
    } else {
        0.0
    };

    // Busiest-pool utilisation at the predicted throughput.
    let mut fu_occupancy: f64 = 0.0;
    for class in IssueClass::ALL {
        let frac = s.class_fraction(class);
        if frac <= 1e-12 {
            continue;
        }
        let service = if class == IssueClass::FpDivide { s.mean_service(class) } else { 1.0 };
        fu_occupancy =
            fu_occupancy.max(ipc * frac * service.max(1.0) / limits.limit(class) as f64);
    }
    let fu_occupancy = fu_occupancy.clamp(0.0, 1.0);

    let regs_peak = [RegClass::Int, RegClass::Fp].map(|class| {
        let c = &oracle.classes[class.index()];
        let ceiling = oracle.upper_bound(class, config.phys_regs(), 0);
        let lo = c.floor.min(ceiling);
        c.ideal_demand.clamp(lo, ceiling)
    });

    ModelEstimate {
        ipc,
        fu_occupancy,
        dq_occupancy,
        regs_live_committed,
        regs_live_awaiting,
        regs_live_exec,
        regs_peak,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::summarize;
    use rf_bpred::PredictorKind;
    use rf_mem::{CacheConfig, CacheOrg};

    fn config(width: usize, regs: usize) -> MachineConfig {
        MachineConfig::new(width).dispatch_queue(8 * width).physical_regs(regs)
    }

    fn summary_for(width: usize) -> WorkloadSummary {
        let ibw = MachineConfig::new(width).effective_insert_bandwidth();
        summarize(
            "compress",
            5_000,
            12,
            ibw,
            CacheConfig::baseline(),
            CacheOrg::LockupFree,
            PredictorKind::Combining,
        )
        .expect("known bench")
    }

    #[test]
    fn predictions_are_finite_and_bounded() {
        let s = summary_for(4);
        let cfg = config(4, 64);
        let e = evaluate(&s, &cfg);
        assert!(e.ipc.is_finite() && e.ipc > 0.0 && e.ipc <= 4.0, "{}", e.ipc);
        assert!((0.0..=1.0).contains(&e.fu_occupancy));
        assert!(e.dq_occupancy >= 0.0 && e.dq_occupancy <= 32.0);
        assert!(e.regs_live_committed >= 0.0);
        assert!(e.regs_live_awaiting >= 0.0);
        assert!(e.regs_live_exec >= 0.0);
    }

    #[test]
    fn more_registers_never_hurt() {
        let s = summary_for(4);
        let starved = evaluate(&s, &config(4, 40)).ipc;
        let roomy = evaluate(&s, &config(4, 2048)).ipc;
        assert!(roomy >= starved, "{roomy} < {starved}");
    }

    #[test]
    fn wider_machines_never_hurt() {
        let narrow = evaluate(&summary_for(4), &config(4, 2048)).ipc;
        let wide = evaluate(&summary_for(8), &config(8, 2048)).ipc;
        assert!(wide >= narrow, "{wide} < {narrow}");
    }

    #[test]
    fn peaks_sit_inside_the_oracle_bracket() {
        let s = summary_for(4);
        for regs in [40, 64, 128, 2048] {
            let e = evaluate(&s, &config(4, regs));
            for class in [RegClass::Int, RegClass::Fp] {
                let c = &s.stats.oracle.classes[class.index()];
                let ceiling = s.stats.oracle.upper_bound(class, regs, 0);
                let peak = e.regs_peak[class.index()];
                assert!(peak >= c.floor.min(ceiling), "{peak} below floor {}", c.floor);
                assert!(peak <= ceiling, "{peak} above ceiling {ceiling}");
            }
        }
    }

    #[test]
    fn empty_summary_yields_zeroes() {
        let mut s = summary_for(4);
        s.stats = rf_check::workload_stats(&[], 6);
        let e = evaluate(&s, &config(4, 64));
        assert_eq!(e.ipc, 0.0);
        assert_eq!(e.regs_peak, [31, 31]);
    }
}
