//! Property-based cross-validation: over random machine shapes, seeds
//! and benchmark profiles, the simulator must never trip the sanitizer,
//! and its observed register demand must always fall inside the static
//! oracle's bracket.

use proptest::prelude::*;
use rf_check::{cross_validate, CheckParams};
use rf_core::ExceptionModel;
use rf_workload::{spec92, BenchmarkProfile};

fn params(bench: String, width: usize, precise: bool, regs: usize, commits: u64, seed: u64) -> CheckParams {
    CheckParams {
        bench,
        width,
        exceptions: if precise { ExceptionModel::Precise } else { ExceptionModel::Imprecise },
        regs,
        commits,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any benchmark, width, model, register-file size and seed, the
    /// sanitizer stays clean, the dataflow counts reconcile, and the
    /// simulator's max-live count lies in `[floor, ceiling]`.
    #[test]
    fn random_configurations_cross_validate(
        bench_idx in 0usize..9,
        width in prop::sample::select(vec![4usize, 8]),
        precise in any::<bool>(),
        regs in prop::sample::select(vec![48usize, 64, 128, 2048]),
        commits in 1_000u64..3_000,
        seed in 0u64..100,
    ) {
        let bench = spec92::all()[bench_idx].name.clone();
        let report = cross_validate(&params(bench, width, precise, regs, commits, seed))
            .expect("benchmark exists");
        prop_assert_eq!(report.sanitizer_violations, 0, "{}", report.render());
        prop_assert!(report.dataflow_errors.is_empty(), "{}", report.render());
        for c in &report.classes {
            prop_assert!(
                c.floor <= c.sim_max_live && c.sim_max_live <= c.ceiling,
                "class {} bracket violated: {} <= {} <= {}\n{}",
                c.class, c.floor, c.sim_max_live, c.ceiling, report.render()
            );
        }
        prop_assert!(report.passed());
    }

    /// Perturbing the workload's dependency and branch parameters (within
    /// meaningful ranges) must not shake the invariants either: the
    /// sanitizer and the bracket are properties of the *machine*, not of
    /// a lucky workload.
    #[test]
    fn perturbed_profiles_stay_clean(
        mean_dist in 2.0f64..12.0,
        two_src_frac in 0.1f64..0.9,
        bias in 0.55f64..0.95,
        mean_trip in 4.0f64..40.0,
        precise in any::<bool>(),
        seed in 0u64..100,
    ) {
        let mut profile: BenchmarkProfile = spec92::compress();
        profile.name = "compress-perturbed".to_owned();
        profile.deps.mean_dist = mean_dist;
        profile.deps.two_src_frac = two_src_frac;
        profile.branch.bias = bias;
        profile.branch.mean_trip = mean_trip;

        // cross_validate resolves by name, so drive its internals directly
        // through a sanitized pipeline + static prefix comparison.
        use rf_check::{analyze, Sanitizer};
        use rf_core::{LiveModel, MachineConfig, Pipeline};
        use rf_isa::RegClass;
        use rf_workload::TraceGenerator;

        let model = if precise { ExceptionModel::Precise } else { ExceptionModel::Imprecise };
        let regs = 64;
        let config = MachineConfig::new(4)
            .dispatch_queue(32)
            .physical_regs(regs)
            .exceptions(model)
            .seed(seed);
        let insert_bw = config.effective_insert_bandwidth();
        let mut trace = TraceGenerator::new(&profile, seed);
        let (stats, sanitizer) = Pipeline::with_observer(config, Sanitizer::new(regs, model))
            .run_observed(&mut trace, 1_500);
        prop_assert!(sanitizer.is_clean(), "{}", sanitizer.report());

        let prefix: Vec<_> =
            TraceGenerator::new(&profile, seed).take(stats.committed as usize).collect();
        let oracle = analyze(&prefix, insert_bw);
        let slack = stats.inserted - stats.committed;
        for class in RegClass::ALL {
            let max_live = stats.live_percentile(class, LiveModel::Precise, 100.0);
            let co = &oracle.classes[class.index()];
            prop_assert!(co.floor <= max_live, "floor {} > max-live {max_live}", co.floor);
            prop_assert!(
                max_live <= oracle.upper_bound(class, regs, slack),
                "max-live {max_live} above static ceiling"
            );
        }
        prop_assert_eq!(stats.committed_loads, oracle.loads);
        prop_assert_eq!(stats.committed_cbr, oracle.branches);
    }
}
