//! Proves every sanitizer checker can actually fail.
//!
//! Each test runs a real pipeline with a [`FaultInjector`] corrupting the
//! observer event stream in exactly one way, and asserts that the
//! [`Sanitizer`] flags the matching [`ViolationKind`] with the violating
//! sequence number / physical register attached. A checker that stays
//! green under injected corruption would be a checker that checks
//! nothing.

use rf_check::{Fault, FaultInjector, Sanitizer, ViolationKind};
use rf_core::{ExceptionModel, MachineConfig, Pipeline};
use rf_workload::{spec92, TraceGenerator};

const COMMITS: u64 = 3_000;
const REGS: usize = 64;
const SEED: u64 = 12;

fn config(model: ExceptionModel) -> MachineConfig {
    MachineConfig::new(4).dispatch_queue(32).physical_regs(REGS).exceptions(model).seed(SEED)
}

/// Runs compress under `model` with `fault` injected into the observer
/// stream; returns the sanitizer and whether the fault actually fired.
fn run_with_fault(fault: Fault, model: ExceptionModel) -> (Sanitizer, bool) {
    let injector = FaultInjector::new(Sanitizer::new(REGS, model), fault);
    let mut trace = TraceGenerator::new(&spec92::compress(), SEED);
    let (_stats, injector) =
        Pipeline::with_observer(config(model), injector).run_observed(&mut trace, COMMITS);
    let fired = injector.fired();
    (injector.into_inner(), fired)
}

fn violation_of(s: &Sanitizer, kind: ViolationKind) -> &rf_check::Violation {
    s.violations()
        .iter()
        .find(|v| v.kind == kind)
        .unwrap_or_else(|| panic!("expected a {} violation; report:\n{}", kind.label(), s.report()))
}

#[test]
fn clean_run_has_no_violations_precise() {
    let sanitizer = Sanitizer::new(REGS, ExceptionModel::Precise);
    let mut trace = TraceGenerator::new(&spec92::compress(), SEED);
    let (_stats, s) = Pipeline::with_observer(config(ExceptionModel::Precise), sanitizer)
        .run_observed(&mut trace, COMMITS);
    assert!(s.is_clean(), "{}", s.report());
    assert!(s.events() > COMMITS, "hooks must fire at least once per instruction");
}

#[test]
fn clean_run_has_no_violations_imprecise() {
    let sanitizer = Sanitizer::new(REGS, ExceptionModel::Imprecise);
    let mut trace = TraceGenerator::new(&spec92::compress(), SEED);
    let (_stats, s) = Pipeline::with_observer(config(ExceptionModel::Imprecise), sanitizer)
        .run_observed(&mut trace, COMMITS);
    assert!(s.is_clean(), "{}", s.report());
}

#[test]
fn replayed_rename_trips_double_alloc() {
    let (s, fired) = run_with_fault(Fault::ReplayRename, ExceptionModel::Precise);
    assert!(fired, "injection never triggered");
    let v = violation_of(&s, ViolationKind::DoubleAlloc);
    assert!(v.seq.is_some(), "double-alloc must name the offending instruction");
    assert!(v.reg.is_some(), "double-alloc must name the register");
}

#[test]
fn aliased_rename_trips_bijectivity() {
    let (s, fired) = run_with_fault(Fault::AliasRename, ExceptionModel::Precise);
    assert!(fired, "injection never triggered");
    let v = violation_of(&s, ViolationKind::RenameNotBijective);
    assert!(v.seq.is_some());
    assert!(v.reg.is_some(), "must name the doubly-owned register");
}

#[test]
fn double_free_trips_with_register() {
    let (s, fired) = run_with_fault(Fault::DoubleFree, ExceptionModel::Imprecise);
    assert!(fired, "injection never triggered (imprecise model must free via kill path)");
    let v = violation_of(&s, ViolationKind::DoubleFree);
    assert!(v.reg.is_some(), "double-free must name the register");
    assert!((v.reg.unwrap() as usize) < REGS);
}

#[test]
fn out_of_range_free_trips() {
    let (s, fired) = run_with_fault(Fault::OutOfRangeFree, ExceptionModel::Imprecise);
    assert!(fired, "injection never triggered");
    let v = violation_of(&s, ViolationKind::OutOfRange);
    assert_eq!(v.reg, Some(u32::MAX));
}

#[test]
fn dropped_squash_free_trips_squash_leak() {
    let (s, fired) = run_with_fault(Fault::DropSquashFree, ExceptionModel::Precise);
    assert!(fired, "no squash with a destination occurred; raise COMMITS");
    let v = violation_of(&s, ViolationKind::SquashLeak);
    assert!(v.seq.is_some(), "squash-leak must name the squashed instruction");
    assert!(v.reg.is_some(), "squash-leak must name the leaked register");
}

#[test]
fn dropped_commit_free_trips_commit_free_mismatch() {
    let (s, fired) = run_with_fault(Fault::DropCommitFree, ExceptionModel::Precise);
    assert!(fired, "injection never triggered");
    let v = violation_of(&s, ViolationKind::CommitFreeMismatch);
    assert!(v.seq.is_some());
    assert!(v.reg.is_some(), "must name the register that should have been freed");
}

#[test]
fn rewound_commit_trips_commit_out_of_order() {
    let (s, fired) = run_with_fault(Fault::RewindCommit, ExceptionModel::Precise);
    assert!(fired, "injection never triggered");
    let v = violation_of(&s, ViolationKind::CommitOutOfOrder);
    assert!(v.seq.is_some(), "must name the out-of-order sequence number");
}

#[test]
fn skewed_free_count_trips_conservation() {
    let (s, fired) = run_with_fault(Fault::SkewFreeCount, ExceptionModel::Precise);
    assert!(fired, "injection never triggered");
    let v = violation_of(&s, ViolationKind::FreelistConservation);
    assert!(v.class.is_some(), "conservation violation must name the class");
}

#[test]
fn every_fault_is_exercised_by_a_test() {
    // Meta-test: the suite above must cover Fault::ALL exactly.
    assert_eq!(Fault::ALL.len(), 8);
}
