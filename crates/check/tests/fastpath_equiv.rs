//! Equivalence sweep for the event-driven cycle kernel.
//!
//! Runs every configuration of the standard check matrix twice — once with
//! the legacy per-cycle loop (`RF_FASTPATH=0` semantics) and once with
//! idle-cycle skipping — and asserts the full [`SimStats`] are identical.
//! This is the executable form of the kernel's equivalence argument: the
//! skip decision may only jump over cycles in which no statistic can
//! change, so the two loops must agree bit for bit on every counter and
//! histogram, not just on headline IPC.

use rf_check::{config_for, default_matrix};
use rf_core::{Pipeline, SimStats};
use rf_workload::{spec92, TraceGenerator};

const COMMITS: u64 = 2_000;
const SEED: u64 = 12;

fn simulate(params_idx: usize, fastpath: bool) -> SimStats {
    let params = &default_matrix(COMMITS, SEED)[params_idx];
    let profile = spec92::by_name(&params.bench).expect("matrix benches exist");
    let mut trace = TraceGenerator::new(&profile, params.seed);
    Pipeline::new(config_for(params))
        .with_fastpath(fastpath)
        .run(&mut trace, params.commits)
}

#[test]
fn fastpath_is_byte_identical_across_the_check_matrix() {
    let matrix = default_matrix(COMMITS, SEED);
    for (i, params) in matrix.iter().enumerate() {
        let legacy = simulate(i, false);
        let fast = simulate(i, true);
        assert_eq!(
            legacy, fast,
            "kernel diverged on {} width={} {:?} regs={}",
            params.bench, params.width, params.exceptions, params.regs
        );
    }
}
