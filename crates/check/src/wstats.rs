//! Schedule-independent workload statistics for the analytic model.
//!
//! [`workload_stats`] bundles everything `rf-model` needs to predict a
//! configuration's behaviour without simulating it: the static oracle's
//! def-use/lifetime analysis ([`crate::oracle`]), the instruction-kind
//! mix, and the dataflow ILP limit of the same committed prefix under a
//! ladder of finite instruction windows
//! ([`rf_core::dataflow::analyze`]). All of it is computed from the
//! instruction stream alone — no pipeline state — so the numbers are
//! properties of the *workload*, reusable across every machine shape
//! that shares an insert bandwidth.

use crate::oracle::{self, TraceOracle};
use rf_isa::{Instruction, IssueClass, OpKind, RegClass};

/// The window ladder for the finite-window dataflow sweeps, in
/// instructions. Chosen to straddle the effective windows realisable by
/// the paper's configurations (dispatch queues of 32–64 entries, 33–2016
/// renameable registers per class).
pub const DATAFLOW_WINDOWS: [usize; 7] = [8, 16, 32, 64, 128, 256, 512];

/// Workload statistics consumed by the analytic model: the static
/// oracle, the kind mix, and a windowed dataflow-IPC curve.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadStats {
    /// The static oracle of the prefix (def-use chains, lifetime
    /// categories, ideal-schedule demand), paced at the insert
    /// bandwidth passed to [`workload_stats`].
    pub oracle: TraceOracle,
    /// Instruction counts per [`OpKind`], indexed in [`OpKind::ALL`]
    /// order.
    pub kind_counts: [u64; OpKind::ALL.len()],
    /// Dataflow-limited IPC under each window of [`DATAFLOW_WINDOWS`],
    /// made non-decreasing (a larger window can never lower the limit;
    /// the running max irons out sampling noise from the ring
    /// approximation).
    pub windowed_ipc: [f64; DATAFLOW_WINDOWS.len()],
    /// Dataflow-limited IPC with an unbounded window (Wall's limit).
    pub unbounded_ipc: f64,
}

impl WorkloadStats {
    /// Fraction of the prefix with the given kind.
    pub fn kind_fraction(&self, kind: OpKind) -> f64 {
        let n = self.oracle.instructions;
        if n == 0 {
            return 0.0;
        }
        let i = OpKind::ALL.iter().position(|&k| k == kind).expect("kind in ALL");
        self.kind_counts[i] as f64 / n as f64
    }

    /// Fraction of the prefix issued to the given functional-unit
    /// class.
    pub fn class_fraction(&self, class: IssueClass) -> f64 {
        OpKind::ALL
            .iter()
            .filter(|k| k.issue_class() == class)
            .map(|&k| self.kind_fraction(k))
            .sum()
    }

    /// Mean service time (execution latency in cycles) of instructions
    /// issued to the given class, weighted by the prefix's mix. Zero if
    /// the class is unused.
    pub fn mean_service(&self, class: IssueClass) -> f64 {
        let mut insts = 0.0;
        let mut cycles = 0.0;
        for (i, &k) in OpKind::ALL.iter().enumerate() {
            if k.issue_class() == class {
                insts += self.kind_counts[i] as f64;
                cycles += self.kind_counts[i] as f64 * f64::from(k.latency());
            }
        }
        if insts == 0.0 {
            0.0
        } else {
            cycles / insts
        }
    }

    /// Defs of `class` per committed instruction.
    pub fn def_fraction(&self, class: RegClass) -> f64 {
        let n = self.oracle.instructions;
        if n == 0 {
            return 0.0;
        }
        self.oracle.classes[class.index()].defs as f64 / n as f64
    }

    /// The dataflow-limited IPC of a `window`-instruction machine,
    /// interpolated on the [`DATAFLOW_WINDOWS`] ladder (linear in
    /// log-window between rungs, capped by the window itself below the
    /// ladder, held at the top rung above it). Non-decreasing in
    /// `window` by construction.
    pub fn window_ipc(&self, window: f64) -> f64 {
        let lo = DATAFLOW_WINDOWS[0] as f64;
        if window <= lo {
            // Below the ladder the window itself is a hard cap: at most
            // `window` instructions can overlap.
            return self.windowed_ipc[0].min(window.max(1.0));
        }
        let last = *DATAFLOW_WINDOWS.last().expect("non-empty ladder") as f64;
        if window >= last {
            return self.windowed_ipc[DATAFLOW_WINDOWS.len() - 1];
        }
        let pos = DATAFLOW_WINDOWS.iter().rposition(|&w| (w as f64) <= window).unwrap_or(0);
        let (w0, w1) = (DATAFLOW_WINDOWS[pos] as f64, DATAFLOW_WINDOWS[pos + 1] as f64);
        let (y0, y1) = (self.windowed_ipc[pos], self.windowed_ipc[pos + 1]);
        let t = (window.ln() - w0.ln()) / (w1.ln() - w0.ln());
        y0 + (y1 - y0) * t
    }
}

/// Computes [`WorkloadStats`] for a committed prefix. `insert_bw` paces
/// the oracle's ideal schedule exactly as [`oracle::analyze`] does; the
/// dataflow sweeps are pace-independent.
pub fn workload_stats(insts: &[Instruction], insert_bw: usize) -> WorkloadStats {
    let oracle = oracle::analyze(insts, insert_bw);
    let mut kind_counts = [0u64; OpKind::ALL.len()];
    for inst in insts {
        let i = OpKind::ALL
            .iter()
            .position(|&k| k == inst.kind())
            .expect("every kind is in ALL");
        kind_counts[i] += 1;
    }
    let unbounded_ipc = rf_core::dataflow::analyze(insts.iter().copied(), None).ipc();
    let mut windowed_ipc = [0.0; DATAFLOW_WINDOWS.len()];
    let mut running = 0.0f64;
    for (i, &w) in DATAFLOW_WINDOWS.iter().enumerate() {
        let ipc = rf_core::dataflow::analyze(insts.iter().copied(), Some(w)).ipc();
        running = running.max(ipc);
        windowed_ipc[i] = running;
    }
    WorkloadStats { oracle, kind_counts, windowed_ipc, unbounded_ipc }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_isa::ArchReg;

    fn alu(dest: u8, src: u8) -> Instruction {
        Instruction::int_alu(ArchReg::int(dest), [Some(ArchReg::int(src)), None])
    }

    fn mixed_trace(n: usize) -> Vec<Instruction> {
        (0..n)
            .map(|i| match i % 5 {
                0 => Instruction::load(ArchReg::int(1), ArchReg::int(2), 0x100 + 8 * i as u64),
                1 => Instruction::fp_op(ArchReg::fp(1), [Some(ArchReg::fp(2)), None]),
                2 => Instruction::cond_branch(0x40 + i as u64, i % 2 == 0, Some(ArchReg::int(1))),
                3 => Instruction::store(ArchReg::int(1), ArchReg::int(2), 0x100 + 8 * i as u64),
                _ => alu((i % 16) as u8, ((i + 3) % 16) as u8),
            })
            .collect()
    }

    #[test]
    fn fractions_partition_the_prefix() {
        let s = workload_stats(&mixed_trace(100), 6);
        let total: f64 = OpKind::ALL.iter().map(|&k| s.kind_fraction(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        let by_class: f64 = IssueClass::ALL.iter().map(|&c| s.class_fraction(c)).sum();
        assert!((by_class - 1.0).abs() < 1e-9);
        assert_eq!(s.oracle.instructions, 100);
    }

    #[test]
    fn windowed_ipc_is_non_decreasing_and_below_unbounded() {
        let s = workload_stats(&mixed_trace(400), 6);
        for pair in s.windowed_ipc.windows(2) {
            assert!(pair[1] >= pair[0], "{:?}", s.windowed_ipc);
        }
        let top = s.windowed_ipc[DATAFLOW_WINDOWS.len() - 1];
        assert!(top <= s.unbounded_ipc + 1e-9, "{top} vs {}", s.unbounded_ipc);
    }

    #[test]
    fn window_interpolation_is_monotone() {
        let s = workload_stats(&mixed_trace(400), 6);
        let mut prev = 0.0;
        for w in 1..600 {
            let ipc = s.window_ipc(w as f64);
            assert!(ipc + 1e-12 >= prev, "window {w}: {ipc} < {prev}");
            prev = ipc;
        }
        // The ladder rungs themselves are reproduced exactly.
        for (i, &w) in DATAFLOW_WINDOWS.iter().enumerate() {
            assert!((s.window_ipc(w as f64) - s.windowed_ipc[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn mean_service_matches_known_latencies() {
        // A pure-ALU trace has unit service time in the Integer class.
        let insts: Vec<_> = (0..50).map(|i| alu((i % 8) as u8, 2)).collect();
        let s = workload_stats(&insts, 6);
        assert!((s.mean_service(IssueClass::Integer) - 1.0).abs() < 1e-9);
        assert_eq!(s.mean_service(IssueClass::FpDivide), 0.0);
        assert!(s.def_fraction(RegClass::Int) > 0.99);
        assert_eq!(s.def_fraction(RegClass::Fp), 0.0);
    }
}
