//! Cross-validation of the dynamic simulator against the static oracle.
//!
//! One check runs the pipeline with the [`Sanitizer`] observer riding the
//! zero-cost hooks, statically analyses the exact committed prefix of the
//! same trace, and reconciles the two:
//!
//! * every microarchitectural invariant the sanitizer watches must hold
//!   (freelist conservation, rename-map bijectivity, no double
//!   alloc/free, in-order commit, squash completeness);
//! * the simulator's max-live register count must fall inside the
//!   static `[floor, upper_bound]` bracket for both classes;
//! * the committed instruction stream must match the static def/use and
//!   kind counts exactly (the pipeline commits in order, so the committed
//!   set *is* the first `n` trace entries).

use crate::oracle::{self, TraceOracle};
use crate::sanitizer::Sanitizer;
use rf_core::{CancelToken, ExceptionModel, LiveModel, MachineConfig, Pipeline, SimStats};
use rf_isa::RegClass;
use rf_workload::{spec92, TraceGenerator};

/// Parameters of one cross-validation run.
#[derive(Debug, Clone)]
pub struct CheckParams {
    /// Benchmark profile name (must resolve via [`spec92::by_name`]).
    pub bench: String,
    /// Machine issue width.
    pub width: usize,
    /// Exception / register-freeing model.
    pub exceptions: ExceptionModel,
    /// Physical registers per class.
    pub regs: usize,
    /// Committed instructions to simulate.
    pub commits: u64,
    /// Workload seed.
    pub seed: u64,
}

/// Per-class reconciliation of simulator liveness against the oracle.
#[derive(Debug, Clone)]
pub struct ClassCheck {
    /// The register class.
    pub class: RegClass,
    /// Static lower bound on max-live.
    pub floor: usize,
    /// Simulator's observed max-live (precise model view).
    pub sim_max_live: usize,
    /// Static upper bound (given the simulator's wrong-path slack).
    pub ceiling: usize,
    /// Ideal-schedule peak demand (informational).
    pub ideal_demand: usize,
    /// Ideal-schedule mean in-queue / in-flight / waiting registers
    /// (informational; compare the simulator's category means).
    pub ideal_cat_means: [f64; 3],
    /// Simulator's mean in-queue / in-flight / wait-imprecise /
    /// wait-precise registers.
    pub sim_cat_means: [f64; 4],
}

impl ClassCheck {
    /// Whether the simulator's max-live falls inside the static bracket.
    pub fn bracket_holds(&self) -> bool {
        self.floor <= self.sim_max_live && self.sim_max_live <= self.ceiling
    }
}

/// The full reconciliation report for one run.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// The parameters checked.
    pub params: CheckParams,
    /// Sanitizer observer events consumed.
    pub sanitizer_events: u64,
    /// Sanitizer violations (0 on a clean run).
    pub sanitizer_violations: u64,
    /// Rendered sanitizer report (violation details; empty summary when
    /// clean).
    pub sanitizer_report: String,
    /// Per-class liveness reconciliation.
    pub classes: Vec<ClassCheck>,
    /// Dataflow mismatches between the committed stream and the static
    /// prefix (committed/load/branch counts); empty when consistent.
    pub dataflow_errors: Vec<String>,
    /// Static oracle summary for the committed prefix.
    pub oracle: TraceOracle,
    /// Simulator statistics for the run.
    pub stats: SimStats,
}

impl CheckReport {
    /// Whether every check passed.
    pub fn passed(&self) -> bool {
        self.sanitizer_violations == 0
            && self.dataflow_errors.is_empty()
            && self.classes.iter().all(ClassCheck::bracket_holds)
    }

    /// Renders the human-readable reconciliation report.
    pub fn render(&self) -> String {
        let p = &self.params;
        let mut out = String::new();
        out.push_str(&format!(
            "check {b} width={w} {e} regs={r} commits={c} seed={s}: {verdict}\n",
            b = p.bench,
            w = p.width,
            e = p.exceptions,
            r = p.regs,
            c = p.commits,
            s = p.seed,
            verdict = if self.passed() { "PASS" } else { "FAIL" },
        ));
        out.push_str(&format!(
            "  sanitizer: {} events, {} violations\n",
            self.sanitizer_events, self.sanitizer_violations
        ));
        if self.sanitizer_violations > 0 {
            for line in self.sanitizer_report.lines() {
                out.push_str(&format!("    {line}\n"));
            }
        }
        for c in &self.classes {
            let ok = if c.bracket_holds() { "ok" } else { "VIOLATED" };
            out.push_str(&format!(
                "  {cl}: floor {f} <= sim max-live {m} <= ceiling {u} [{ok}] \
                 (ideal demand {d})\n",
                cl = c.class,
                f = c.floor,
                m = c.sim_max_live,
                u = c.ceiling,
                d = c.ideal_demand,
            ));
            out.push_str(&format!(
                "    ideal mean in-queue/in-flight/wait: {:.1}/{:.1}/{:.1}  \
                 sim: {:.1}/{:.1}/{:.1}+{:.1}\n",
                c.ideal_cat_means[0],
                c.ideal_cat_means[1],
                c.ideal_cat_means[2],
                c.sim_cat_means[0],
                c.sim_cat_means[1],
                c.sim_cat_means[2],
                c.sim_cat_means[3],
            ));
        }
        out.push_str(&format!(
            "  dataflow: {committed} committed, {loads} loads, {cbr} branches, \
             int defs {di} (dead {ddi}), fp defs {df} (dead {ddf})\n",
            committed = self.stats.committed,
            loads = self.stats.committed_loads,
            cbr = self.stats.committed_cbr,
            di = self.oracle.classes[0].defs,
            ddi = self.oracle.classes[0].dead_defs,
            df = self.oracle.classes[1].defs,
            ddf = self.oracle.classes[1].dead_defs,
        ));
        for e in &self.dataflow_errors {
            out.push_str(&format!("    MISMATCH: {e}\n"));
        }
        out
    }
}

/// Builds the machine configuration for a set of check parameters.
/// Public so other matrix consumers (e.g. the analytic-model
/// cross-validation of `rfstudy model --check`) can simulate exactly
/// the configurations the check matrix covers.
pub fn config_for(p: &CheckParams) -> MachineConfig {
    MachineConfig::new(p.width)
        .dispatch_queue(8 * p.width)
        .physical_regs(p.regs)
        .exceptions(p.exceptions)
        .seed(p.seed)
}

/// Runs one sanitized simulation plus the static analysis of the same
/// trace prefix, and reconciles the two. `Err` only for unusable
/// parameters (unknown benchmark); check failures are reported via
/// [`CheckReport::passed`].
pub fn cross_validate(params: &CheckParams) -> Result<CheckReport, String> {
    cross_validate_cancellable(params, None)
}

/// [`cross_validate`] with an optional cooperative cancel token (the
/// `rfstudy check --deadline-secs` wall-clock budget): when the token
/// fires mid-simulation, the run's partial state is discarded and an
/// `Err` describing the cancellation is returned.
pub fn cross_validate_cancellable(
    params: &CheckParams,
    cancel: Option<&CancelToken>,
) -> Result<CheckReport, String> {
    let profile = spec92::by_name(&params.bench)
        .ok_or_else(|| format!("unknown benchmark '{}'", params.bench))?;
    let config = config_for(params);
    let insert_bw = config.effective_insert_bandwidth();

    // Dynamic run, sanitizer riding the observer hooks.
    let sanitizer = Sanitizer::new(params.regs, params.exceptions);
    let mut trace = TraceGenerator::new(&profile, params.seed);
    let mut pipeline = Pipeline::with_observer(config, sanitizer);
    if let Some(token) = cancel {
        pipeline = pipeline.with_cancel(token.clone());
    }
    let (stats, sanitizer) =
        pipeline.try_run_observed(&mut trace, params.commits).map_err(|c| {
            format!(
                "check {} width={} {} regs={} cancelled at cycle {} \
                 (partial statistics discarded)",
                params.bench, params.width, params.exceptions, params.regs, c.at_cycle
            )
        })?;

    // Static analysis of the committed prefix: commit is in-order and the
    // generator is deterministic, so the committed instructions are
    // exactly the first `stats.committed` entries of a fresh trace.
    let prefix: Vec<_> =
        TraceGenerator::new(&profile, params.seed).take(stats.committed as usize).collect();
    let oracle = oracle::analyze(&prefix, insert_bw);

    let slack = stats.inserted.saturating_sub(stats.committed);
    let classes = RegClass::ALL
        .iter()
        .map(|&class| {
            let co = &oracle.classes[class.index()];
            ClassCheck {
                class,
                floor: co.floor,
                sim_max_live: stats.live_percentile(class, LiveModel::Precise, 100.0),
                ceiling: oracle.upper_bound(class, params.regs, slack),
                ideal_demand: co.ideal_demand,
                ideal_cat_means: co.ideal_cat_means,
                sim_cat_means: stats.category_means(class),
            }
        })
        .collect();

    let mut dataflow_errors = Vec::new();
    if stats.committed != oracle.instructions {
        dataflow_errors.push(format!(
            "committed count {} != static prefix length {}",
            stats.committed, oracle.instructions
        ));
    }
    if stats.committed_loads != oracle.loads {
        dataflow_errors.push(format!(
            "committed loads {} != static loads {}",
            stats.committed_loads, oracle.loads
        ));
    }
    if stats.committed_cbr != oracle.branches {
        dataflow_errors.push(format!(
            "committed branches {} != static branches {}",
            stats.committed_cbr, oracle.branches
        ));
    }

    Ok(CheckReport {
        params: params.clone(),
        sanitizer_events: sanitizer.events(),
        sanitizer_violations: sanitizer.total_violations(),
        sanitizer_report: sanitizer.report(),
        classes,
        dataflow_errors,
        oracle,
        stats,
    })
}

/// The default `rfstudy check` matrix: every benchmark at both widths,
/// both exception models, an ample and a scarce register file.
pub fn default_matrix(commits: u64, seed: u64) -> Vec<CheckParams> {
    let mut out = Vec::new();
    for profile in spec92::all() {
        for &width in &[4usize, 8] {
            for &exceptions in &[ExceptionModel::Precise, ExceptionModel::Imprecise] {
                for &regs in &[2048usize, 64] {
                    out.push(CheckParams {
                        bench: profile.name.clone(),
                        width,
                        exceptions,
                        regs,
                        commits,
                        seed,
                    });
                }
            }
        }
    }
    out
}

/// Aggregate sanitizer status over the experiment suite's probe runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct SuiteSanitizer {
    /// Sanitized probe runs executed.
    pub probes: u64,
    /// Total observer events consumed across probes.
    pub events: u64,
    /// Total invariant violations (0 when clean).
    pub violations: u64,
}

impl SuiteSanitizer {
    /// `"clean"` when no probe tripped, `"VIOLATED"` otherwise — the
    /// value recorded in the suite's JSON telemetry.
    pub fn status(&self) -> &'static str {
        if self.violations == 0 {
            "clean"
        } else {
            "VIOLATED"
        }
    }
}

/// Runs the suite's sanitized probe set: a small representative corner of
/// the full matrix (one integer-heavy and one FP-heavy benchmark, both
/// widths, both models, scarce registers) so every suite run re-proves
/// the invariants on the exact binary being measured.
pub fn suite_probe(commits: u64) -> SuiteSanitizer {
    let mut agg = SuiteSanitizer::default();
    for bench in ["compress", "tomcatv"] {
        for &width in &[4usize, 8] {
            for &exceptions in &[ExceptionModel::Precise, ExceptionModel::Imprecise] {
                let params = CheckParams {
                    bench: bench.to_string(),
                    width,
                    exceptions,
                    regs: 64,
                    commits,
                    seed: 12,
                };
                let report = cross_validate(&params).expect("suite probe benchmarks exist");
                agg.probes += 1;
                agg.events += report.sanitizer_events;
                agg.violations += report.sanitizer_violations;
                if !report.dataflow_errors.is_empty()
                    || !report.classes.iter().all(ClassCheck::bracket_holds)
                {
                    agg.violations += 1;
                }
            }
        }
    }
    agg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(bench: &str, exceptions: ExceptionModel, regs: usize) -> CheckParams {
        CheckParams {
            bench: bench.to_string(),
            width: 4,
            exceptions,
            regs,
            commits: 2_000,
            seed: 12,
        }
    }

    #[test]
    fn unknown_benchmark_is_an_error() {
        assert!(cross_validate(&params("nonesuch", ExceptionModel::Precise, 64)).is_err());
    }

    #[test]
    fn compress_precise_passes() {
        let r = cross_validate(&params("compress", ExceptionModel::Precise, 64)).unwrap();
        assert!(r.passed(), "{}", r.render());
        assert!(r.sanitizer_events > 0, "sanitizer hooks must have fired");
    }

    #[test]
    fn tomcatv_imprecise_passes() {
        let r = cross_validate(&params("tomcatv", ExceptionModel::Imprecise, 64)).unwrap();
        assert!(r.passed(), "{}", r.render());
    }

    #[test]
    fn ample_registers_pass_and_report_renders() {
        let r = cross_validate(&params("doduc", ExceptionModel::Precise, 2048)).unwrap();
        assert!(r.passed(), "{}", r.render());
        let text = r.render();
        assert!(text.contains("PASS"));
        assert!(text.contains("floor"));
    }

    #[test]
    fn a_fired_token_cancels_cross_validation() {
        let token = CancelToken::new();
        token.cancel();
        let err = cross_validate_cancellable(
            &params("compress", ExceptionModel::Precise, 64),
            Some(&token),
        )
        .unwrap_err();
        assert!(err.contains("cancelled"), "{err}");
        // An unfired token changes nothing.
        let fresh = CancelToken::new();
        let r = cross_validate_cancellable(
            &params("compress", ExceptionModel::Precise, 64),
            Some(&fresh),
        )
        .unwrap();
        assert!(r.passed(), "{}", r.render());
    }

    #[test]
    fn default_matrix_covers_the_space() {
        let m = default_matrix(1_000, 12);
        // 9 benches x 2 widths x 2 models x 2 reg sizes.
        assert_eq!(m.len(), 72);
        assert!(m.iter().any(|p| p.width == 8 && p.regs == 64));
    }
}
