//! The static trace analyzer: def-use chains, live ranges, a sound
//! lower bound on physical-register demand, and an ideal-schedule
//! decomposition of register lifetimes into the paper's liveness
//! categories.
//!
//! Everything here is computed from the committed instruction stream
//! alone — no pipeline state — which is what makes it an independent
//! oracle for the simulator (see [`crate::crosscheck`]).
//!
//! ## Soundness of the lower bound
//!
//! Bind each register read to the most recent prior write of the same
//! virtual register; each write opens a *def* whose physical register
//! stays allocated, in any legal schedule, from the cycle its
//! instruction inserts until after the next write of the same virtual
//! register **completes** (imprecise freeing) or **commits** (precise
//! freeing) — and the next write can insert no earlier than its own
//! trace position. Therefore at the point any trace position `j`
//! inserts, every def whose interval `[def_pos, next_def_pos)` covers
//! `j` is still allocated (the interval extends *through* the
//! redefinition position when the redefining instruction also reads the
//! old value, since it renames its source before overwriting). The 31
//! initial architectural mappings per class open defs at position 0.
//! The maximum interval overlap over committed positions is then a
//! schedule-independent floor on the simulator's max-live count.
//!
//! The matching upper bound is `31 + defs`, since every allocation
//! after reset is the destination of one inserted instruction; the
//! cross-check widens it by the simulator's own count of inserted but
//! never-committed (wrong-path or still in-flight) instructions.

use rf_isa::{Instruction, OpKind, RegClass};
use std::collections::HashMap;

/// Per-class results of the static analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassOracle {
    /// Writes (defs) of this class in the trace, excluding the 31
    /// initial architectural mappings.
    pub defs: u64,
    /// Reads bound to those defs (including reads of initial mappings).
    pub uses: u64,
    /// Defs overwritten without ever being read.
    pub dead_defs: u64,
    /// Schedule-independent lower bound on max simultaneously live
    /// physical registers (see module docs); at least 31.
    pub floor: usize,
    /// Peak register demand of the ideal schedule (unlimited issue at
    /// the configured insert bandwidth, perfect memory and branches,
    /// imprecise freeing): the max overlap of rename-to-free lifetimes.
    pub ideal_demand: usize,
    /// Mean registers whose writer is in-queue / in-flight / waiting to
    /// be freed, per ideal-schedule cycle — the static analogue of the
    /// paper's liveness-category decomposition (Figures 3–7), without
    /// the 31 always-live architectural mappings.
    pub ideal_cat_means: [f64; 3],
    /// Mean trace-position distance from a def to its last use, over
    /// defs that are read at least once.
    pub mean_def_use_span: f64,
}

/// Results of statically analysing one trace prefix.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceOracle {
    /// Instructions analysed.
    pub instructions: u64,
    /// Loads in the prefix.
    pub loads: u64,
    /// Stores in the prefix.
    pub stores: u64,
    /// Conditional branches in the prefix.
    pub branches: u64,
    /// Cycles the ideal schedule takes to complete the prefix.
    pub ideal_cycles: u64,
    /// Per-class analysis (indexed by [`RegClass::index`]).
    pub classes: [ClassOracle; 2],
}

impl TraceOracle {
    /// The sound upper bound on the simulator's max-live count for
    /// `class`: initial mappings plus every possible allocation. `slack`
    /// is the simulator's count of inserted-but-never-committed
    /// instructions (wrong-path and end-of-run in-flight), each of which
    /// can hold at most one extra register of the class.
    pub fn upper_bound(&self, class: RegClass, phys_regs: usize, slack: u64) -> usize {
        phys_regs.min(31 + (self.classes[class.index()].defs + slack) as usize)
    }
}

/// One def (write) of a virtual register, including the 31 initial
/// architectural mappings per class (`pos == -1`).
#[derive(Debug, Clone, Copy)]
struct Def {
    pos: i64,
    last_use: i64,
    next_def: i64,
    next_def_id: Option<usize>,
    uses: u32,
    /// Ideal-schedule times: insert (rename), operands-ready (issue),
    /// and completion of the writing instruction.
    rename_at: u64,
    issue_at: u64,
    finish_at: u64,
    /// Latest completion among the def's readers.
    reader_finish: u64,
}

impl Def {
    fn initial() -> Self {
        Def {
            pos: -1,
            last_use: -1,
            next_def: -1,
            next_def_id: None,
            uses: 0,
            rename_at: 0,
            issue_at: 0,
            finish_at: 0,
            reader_finish: 0,
        }
    }
}

/// Statically analyses a trace prefix. `insert_bw` is the machine's
/// per-cycle insert bandwidth (`1.5 x width` in the paper), which paces
/// the ideal schedule's rename times.
pub fn analyze(insts: &[Instruction], insert_bw: usize) -> TraceOracle {
    let ibw = insert_bw.max(1) as u64;
    let n = insts.len();
    // Per-class def lists; ids 0..31 are the initial mappings.
    let mut defs: [Vec<Def>; 2] = [
        (0..31).map(|_| Def::initial()).collect(),
        (0..31).map(|_| Def::initial()).collect(),
    ];
    // Current def id of each virtual register.
    let mut cur: [[usize; 31]; 2] = [std::array::from_fn(|v| v), std::array::from_fn(|v| v)];
    let mut store_finish: HashMap<u64, u64> = HashMap::new();
    let (mut loads, mut stores, mut branches) = (0u64, 0u64, 0u64);
    let mut ideal_cycles = 0u64;

    for (i, inst) in insts.iter().enumerate() {
        match inst.kind() {
            OpKind::Load => loads += 1,
            OpKind::Store => stores += 1,
            OpKind::CondBranch => branches += 1,
            _ => {}
        }
        let rename_at = i as u64 / ibw;
        let mut ready = rename_at;
        // Sources first: an instruction reading and writing the same
        // virtual register reads the old def.
        for src in inst.renameable_srcs() {
            let ci = src.class().index();
            let d = cur[ci][src.index() as usize];
            ready = ready.max(defs[ci][d].finish_at);
        }
        if inst.kind() == OpKind::Load {
            if let Some(m) = inst.mem() {
                if let Some(&f) = store_finish.get(&m.addr()) {
                    ready = ready.max(f);
                }
            }
        }
        let finish = ready + u64::from(inst.kind().latency());
        for src in inst.renameable_srcs() {
            let ci = src.class().index();
            let d = cur[ci][src.index() as usize];
            let def = &mut defs[ci][d];
            def.last_use = i as i64;
            def.uses += 1;
            def.reader_finish = def.reader_finish.max(finish);
        }
        if let Some(dest) = inst.dest() {
            let ci = dest.class().index();
            let v = dest.index() as usize;
            let old = cur[ci][v];
            let new_id = defs[ci].len();
            defs[ci][old].next_def = i as i64;
            defs[ci][old].next_def_id = Some(new_id);
            defs[ci].push(Def {
                pos: i as i64,
                last_use: -1,
                next_def: -1,
                next_def_id: None,
                uses: 0,
                rename_at,
                issue_at: ready,
                finish_at: finish,
                reader_finish: 0,
            });
            cur[ci][v] = new_id;
        }
        if inst.kind() == OpKind::Store {
            if let Some(m) = inst.mem() {
                store_finish.insert(m.addr(), finish);
            }
        }
        ideal_cycles = ideal_cycles.max(finish);
    }

    let classes = [RegClass::Int, RegClass::Fp].map(|class| {
        summarize(&defs[class.index()], n, ideal_cycles)
    });

    TraceOracle {
        instructions: n as u64,
        loads,
        stores,
        branches,
        ideal_cycles,
        classes,
    }
}

fn summarize(defs: &[Def], n: usize, ideal_cycles: u64) -> ClassOracle {
    let trace_defs = (defs.len() - 31) as u64;
    let mut uses = 0u64;
    let mut dead = 0u64;
    let mut span_sum = 0u64;
    let mut span_count = 0u64;

    // Sound floor: sweep interval overlap over trace positions.
    let mut delta = vec![0i64; n + 1];
    // Ideal demand: event sweep over rename-to-free lifetimes in cycle
    // space, plus per-category duration sums.
    let mut events: Vec<(u64, i64)> = Vec::with_capacity(defs.len() * 2);
    let mut cat_sums = [0u64; 3];

    for d in defs {
        uses += u64::from(d.uses);
        if d.next_def >= 0 && d.uses == 0 && d.pos >= 0 {
            dead += 1;
        }
        if d.uses > 0 && d.pos >= 0 {
            span_sum += (d.last_use - d.pos) as u64;
            span_count += 1;
        }
        // Floor interval in trace-position space.
        let start = d.pos.max(0);
        let end = if d.next_def < 0 {
            n as i64 - 1
        } else if d.last_use == d.next_def {
            // The redefining instruction reads the old value: the old
            // def is still allocated when it inserts.
            d.next_def
        } else {
            d.next_def - 1
        };
        if end >= start && n > 0 {
            delta[start as usize] += 1;
            delta[end as usize + 1] -= 1;
        }
        // Ideal-schedule lifetime: rename until the later of the killing
        // writer's completion, the last reader's completion, and the
        // def's own completion (the imprecise freeing conditions).
        let kill = match d.next_def_id {
            Some(id) => defs[id].finish_at,
            None => ideal_cycles,
        };
        let free_at = kill.max(d.reader_finish).max(d.finish_at);
        events.push((d.rename_at, 1));
        events.push((free_at + 1, -1));
        cat_sums[0] += d.issue_at - d.rename_at;
        cat_sums[1] += d.finish_at - d.issue_at;
        cat_sums[2] += free_at - d.finish_at;
    }

    let mut floor = 0i64;
    let mut acc = 0i64;
    for d in &delta {
        acc += d;
        floor = floor.max(acc);
    }
    let floor = (floor.max(0) as usize).max(31);

    events.sort_unstable();
    let mut demand = 0i64;
    let mut acc = 0i64;
    for (_, d) in events {
        acc += d;
        demand = demand.max(acc);
    }

    let cycles = ideal_cycles.max(1) as f64;
    ClassOracle {
        defs: trace_defs,
        uses,
        dead_defs: dead,
        floor,
        ideal_demand: demand.max(0) as usize,
        ideal_cat_means: cat_sums.map(|s| s as f64 / cycles),
        mean_def_use_span: if span_count > 0 {
            span_sum as f64 / span_count as f64
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_isa::ArchReg;

    fn alu(dest: u8, srcs: [Option<ArchReg>; 2]) -> Instruction {
        Instruction::int_alu(ArchReg::int(dest), srcs)
    }

    #[test]
    fn empty_trace_floor_is_the_architectural_state() {
        let o = analyze(&[], 6);
        for c in &o.classes {
            assert_eq!(c.floor, 31);
            assert_eq!(c.defs, 0);
        }
    }

    #[test]
    fn read_own_dest_raises_floor_to_32() {
        // r1 = r1 + r2 repeatedly: at every redefine position the old
        // def is still read, so 31 chains + 1 overlap.
        let insts: Vec<_> = (0..50)
            .map(|_| alu(1, [Some(ArchReg::int(1)), Some(ArchReg::int(2))]))
            .collect();
        let o = analyze(&insts, 6);
        assert_eq!(o.classes[RegClass::Int.index()].floor, 32);
        assert_eq!(o.classes[RegClass::Int.index()].defs, 50);
    }

    #[test]
    fn overwrites_without_reads_keep_floor_at_31() {
        // r1 = r2 repeatedly: the displaced def is dead at the moment of
        // redefinition.
        let insts: Vec<_> = (0..50).map(|_| alu(1, [Some(ArchReg::int(2)), None])).collect();
        let o = analyze(&insts, 6);
        let c = &o.classes[RegClass::Int.index()];
        assert_eq!(c.floor, 31);
        assert_eq!(c.dead_defs, 49, "all but the final def are overwritten unread");
    }

    #[test]
    fn def_use_chains_count_uses() {
        let insts = vec![
            alu(1, [Some(ArchReg::int(2)), None]),
            alu(3, [Some(ArchReg::int(1)), Some(ArchReg::int(1))]),
        ];
        let o = analyze(&insts, 6);
        let c = &o.classes[RegClass::Int.index()];
        assert_eq!(c.defs, 2);
        // r2 once, r1 twice.
        assert_eq!(c.uses, 3);
        assert!((c.mean_def_use_span - 1.0).abs() < 1e-9, "def at 0, last use at 1");
    }

    #[test]
    fn ideal_demand_is_at_least_the_floor_shape() {
        // A serial dependency chain holds many registers live under the
        // ideal schedule: demand far exceeds the floor.
        let insts: Vec<_> = (0..100)
            .map(|i| alu((i % 31) as u8, [Some(ArchReg::int(((i + 30) % 31) as u8)), None]))
            .collect();
        let o = analyze(&insts, 6);
        let c = &o.classes[RegClass::Int.index()];
        assert!(c.ideal_demand >= c.floor - 31, "{} vs {}", c.ideal_demand, c.floor);
        assert!(o.ideal_cycles >= 100, "serial chain of unit latencies");
    }

    #[test]
    fn instruction_kind_counts() {
        let insts = vec![
            Instruction::load(ArchReg::int(1), ArchReg::int(2), 0x100),
            Instruction::store(ArchReg::int(1), ArchReg::int(2), 0x100),
            Instruction::cond_branch(0x40, true, Some(ArchReg::int(1))),
        ];
        let o = analyze(&insts, 6);
        assert_eq!((o.loads, o.stores, o.branches), (1, 1, 1));
        assert_eq!(o.instructions, 3);
    }
}
