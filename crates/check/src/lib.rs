//! `rf-check`: a static dataflow oracle and a dynamic invariant
//! sanitizer for the `rfstudy` register-file simulator.
//!
//! The simulator's headline numbers — live-register distributions,
//! register-scarcity IPC curves — are only as trustworthy as its rename
//! and freeing machinery. This crate checks that machinery two
//! independent ways:
//!
//! * [`oracle`] analyses a committed instruction stream *statically*:
//!   def-use chains, live ranges, a schedule-independent lower bound on
//!   physical-register demand, and an ideal-schedule decomposition into
//!   the paper's liveness categories.
//! * [`Sanitizer`] rides the zero-cost [`Observer`](rf_core::Observer)
//!   hooks *dynamically*, replaying every rename, free, commit and
//!   squash against its own model of the register files and flagging any
//!   divergence (double alloc/free, freelist conservation, rename-map
//!   bijectivity, commit order, squash completeness).
//!
//! [`crosscheck`] ties the two together: one sanitized simulation per
//! configuration, reconciled against the static analysis of the same
//! trace prefix, surfaced as the `rfstudy check` subcommand and as
//! sanitized probe runs in the experiment suite. [`inject`] proves every
//! sanitizer checker can actually fail. [`wstats`] repackages the
//! oracle together with the instruction mix and windowed dataflow
//! limits as the schedule-independent workload summary the `rf-model`
//! analytic estimator consumes.
//!
//! Nothing here perturbs measurement: the sanitizer only runs when
//! explicitly requested ([`sanitize_enabled`]), and an unobserved
//! pipeline compiles the hooks away entirely.

pub mod crosscheck;
pub mod inject;
pub mod oracle;
pub mod sanitizer;
pub mod wstats;

pub use crosscheck::{config_for, cross_validate, cross_validate_cancellable, default_matrix, suite_probe, CheckParams, CheckReport, SuiteSanitizer};
pub use inject::{Fault, FaultInjector};
pub use oracle::{analyze, ClassOracle, TraceOracle};
pub use sanitizer::{Sanitizer, Violation, ViolationKind};
pub use wstats::{workload_stats, WorkloadStats, DATAFLOW_WINDOWS};

/// Whether sanitized simulation was requested, either at compile time
/// (the `sanitize` cargo feature) or at run time (`RF_SANITIZE` set to
/// anything but `0` or the empty string).
pub fn sanitize_enabled() -> bool {
    if cfg!(feature = "sanitize") {
        return true;
    }
    match std::env::var("RF_SANITIZE") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn sanitize_feature_forces_enabled() {
        // With the feature off, the env var governs; either way the call
        // must not panic.
        let _ = super::sanitize_enabled();
    }
}
