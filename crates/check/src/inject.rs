//! Fault injection for validating the sanitizer itself.
//!
//! A checker that cannot fail is worthless: every invariant the
//! [`Sanitizer`](crate::Sanitizer) watches must be demonstrably
//! *trippable*. [`FaultInjector`] wraps an inner observer and corrupts
//! the event stream in one precisely-targeted way — replaying a rename,
//! aliasing two virtual registers onto one physical register, dropping a
//! free, rewinding the commit sequence — so the test suite can prove
//! each violation kind fires with the right register and sequence number
//! attached (see `tests/fault_injection.rs`).
//!
//! The injector corrupts only what the *observer* sees; the pipeline
//! underneath runs untouched.

use rf_core::{EventKind, Observer, StallCause, TraceEvent};
use rf_isa::RegClass;

/// One way of corrupting the observer event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Forward a rename twice: the same physical register is allocated
    /// again while live (double allocation).
    ReplayRename,
    /// Rewrite a rename's destination to a physical register that
    /// another virtual register currently maps to (bijectivity break).
    AliasRename,
    /// Forward a kill-path free twice (double free).
    DoubleFree,
    /// Emit an extra kill-path free of register `u32::MAX` (out of
    /// range).
    OutOfRangeFree,
    /// Strip the freed register from a squash event (squash leak).
    DropSquashFree,
    /// Strip the freed register from a precise-model commit (commit free
    /// mismatch).
    DropCommitFree,
    /// Replay an already-committed instruction's commit event later
    /// (commit order break).
    RewindCommit,
    /// Over-report the free-list size by one in the register-file state
    /// snapshot (freelist conservation break).
    SkewFreeCount,
}

impl Fault {
    /// All faults, one per sanitizer checker.
    pub const ALL: [Fault; 8] = [
        Fault::ReplayRename,
        Fault::AliasRename,
        Fault::DoubleFree,
        Fault::OutOfRangeFree,
        Fault::DropSquashFree,
        Fault::DropCommitFree,
        Fault::RewindCommit,
        Fault::SkewFreeCount,
    ];
}

/// Renames to pass through before injecting rename-targeted faults, so
/// the machine is past its warm-up transient.
const WARMUP_RENAMES: u64 = 20;

/// Commits to wait between recording and replaying a commit event for
/// [`Fault::RewindCommit`].
const REWIND_DISTANCE: u64 = 50;

/// An observer adapter that forwards all hooks to `inner`, corrupting
/// the stream once according to the configured [`Fault`].
#[derive(Debug)]
pub struct FaultInjector<O: Observer> {
    /// The wrapped observer (typically a
    /// [`Sanitizer`](crate::Sanitizer)).
    pub inner: O,
    fault: Fault,
    injected: bool,
    renames_seen: u64,
    /// Most recent rename, per class: `(cycle, vreg, new)`.
    last_rename: [Option<(u64, u8, u32)>; 2],
    /// Saved commit event and commits forwarded since, for rewinding.
    saved_commit: Option<TraceEvent>,
    commits_since_save: u64,
}

impl<O: Observer> FaultInjector<O> {
    /// Wraps `inner`, arming one injection of `fault`.
    pub fn new(inner: O, fault: Fault) -> Self {
        Self {
            inner,
            fault,
            injected: false,
            renames_seen: 0,
            last_rename: [None; 2],
            saved_commit: None,
            commits_since_save: 0,
        }
    }

    /// Whether the fault actually fired during the run. A test whose
    /// injection never triggered proves nothing.
    pub fn fired(&self) -> bool {
        self.injected
    }

    /// Unwraps the inner observer.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<O: Observer> Observer for FaultInjector<O> {
    const ACTIVE: bool = true;

    fn event(&mut self, mut ev: TraceEvent) {
        match (self.fault, ev.kind) {
            (Fault::DropSquashFree, EventKind::Squash)
                if !self.injected && ev.freed.is_some() =>
            {
                ev.freed = None;
                self.injected = true;
            }
            (Fault::DropCommitFree, EventKind::Commit)
                if !self.injected && ev.freed.is_some() =>
            {
                ev.freed = None;
                self.injected = true;
            }
            (Fault::RewindCommit, EventKind::Commit) => {
                if let Some(saved) = self.saved_commit {
                    self.commits_since_save += 1;
                    if !self.injected && self.commits_since_save >= REWIND_DISTANCE {
                        self.inner.event(ev);
                        // Replay the old commit; its register was already
                        // freed, so strip `freed` to isolate the ordering
                        // violation.
                        let mut replay = saved;
                        replay.freed = None;
                        replay.cycle = ev.cycle;
                        self.inner.event(replay);
                        self.injected = true;
                        return;
                    }
                } else {
                    self.saved_commit = Some(ev);
                }
            }
            _ => {}
        }
        self.inner.event(ev);
    }

    fn stall(&mut self, cycle: u64, cause: StallCause) {
        self.inner.stall(cycle, cause);
    }

    fn reg_free(&mut self, cycle: u64, class: RegClass, phys: u32) {
        self.inner.reg_free(cycle, class, phys);
        if self.injected {
            return;
        }
        match self.fault {
            Fault::DoubleFree => {
                self.inner.reg_free(cycle, class, phys);
                self.injected = true;
            }
            Fault::OutOfRangeFree => {
                self.inner.reg_free(cycle, class, u32::MAX);
                self.injected = true;
            }
            _ => {}
        }
    }

    fn arch_map(&mut self, class: RegClass, vreg: u8, phys: u32) {
        self.inner.arch_map(class, vreg, phys);
    }

    fn rename(&mut self, cycle: u64, seq: u64, class: RegClass, vreg: u8, new: u32, prev: u32) {
        self.renames_seen += 1;
        let past_warmup = self.renames_seen > WARMUP_RENAMES;
        match self.fault {
            Fault::ReplayRename if past_warmup && !self.injected => {
                self.inner.rename(cycle, seq, class, vreg, new, prev);
                self.inner.rename(cycle, seq, class, vreg, new, prev);
                self.injected = true;
                return;
            }
            Fault::AliasRename if past_warmup && !self.injected => {
                // Steal the physical register of the most recent rename of
                // the same class *in the same cycle* (no squash can have
                // intervened mid-cycle, so it is certainly still live and
                // mapped to the other virtual register).
                if let Some((c, v, stolen)) = self.last_rename[class.index()] {
                    if c == cycle && v != vreg {
                        self.inner.rename(cycle, seq, class, vreg, stolen, prev);
                        self.injected = true;
                        return;
                    }
                }
            }
            _ => {}
        }
        self.last_rename[class.index()] = Some((cycle, vreg, new));
        self.inner.rename(cycle, seq, class, vreg, new, prev);
    }

    fn reg_file_state(&mut self, cycle: u64, class: RegClass, free: usize, live: usize, staged: usize) {
        if self.fault == Fault::SkewFreeCount && !self.injected {
            self.injected = true;
            self.inner.reg_file_state(cycle, class, free + 1, live, staged);
            return;
        }
        self.inner.reg_file_state(cycle, class, free, live, staged);
    }

    fn cycle_end(&mut self, cycle: u64, int_free_empty: bool, fp_free_empty: bool) {
        self.inner.cycle_end(cycle, int_free_empty, fp_free_empty);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_list_is_complete_and_unique() {
        let mut all = Fault::ALL.to_vec();
        all.dedup();
        assert_eq!(all.len(), 8);
    }

    #[test]
    fn injector_forwards_when_unarmed() {
        // A fault that never matches leaves the stream untouched.
        #[derive(Default)]
        struct Counter {
            events: u64,
            renames: u64,
        }
        impl Observer for Counter {
            fn event(&mut self, _ev: TraceEvent) {
                self.events += 1;
            }
            fn rename(&mut self, _c: u64, _s: u64, _cl: RegClass, _v: u8, _n: u32, _p: u32) {
                self.renames += 1;
            }
        }
        let mut inj = FaultInjector::new(Counter::default(), Fault::DropSquashFree);
        inj.rename(0, 0, RegClass::Int, 3, 33, 3);
        assert_eq!(inj.inner.renames, 1);
        assert!(!inj.fired());
    }
}
