//! The dynamic invariant sanitizer: an [`Observer`] that shadows the
//! pipeline's register-file and rename state from the event stream alone
//! and flags any microarchitectural invariant violation.
//!
//! The sanitizer keeps an *independent* model — per-class allocation
//! states, the rename map, and a journal of in-flight renames — built
//! purely from observer hooks. Because the pipeline hands observers
//! copies of its state (never mutable access), any divergence between
//! the model and what the pipeline reports is a genuine protocol
//! violation, not an artifact of shared bookkeeping.
//!
//! Checked invariants:
//!
//! * **Freelist conservation** — `free + live == total` every cycle, and
//!   the pipeline's reported free/live/staged counts match the model.
//! * **No double allocation** — a rename may only claim a register the
//!   model holds Free (staged frees are unusable until next cycle).
//! * **No double free** — only a Live register may be freed.
//! * **Range** — every physical index is within the file.
//! * **Rename-map consistency and bijectivity** — the displaced mapping
//!   matches the model, and no two virtual registers share a physical
//!   register.
//! * **In-order commit** — committed sequence numbers strictly increase.
//! * **Squash completeness** — a squashed instruction's destination
//!   register is returned exactly once and its rename rolled back.
//! * **Commit freeing protocol** — under precise exceptions, committing
//!   an instruction with a destination frees exactly the previous
//!   mapping; under imprecise models, commit frees nothing.

use rf_core::obs::{EventKind, Observer, TraceEvent};
use rf_core::ExceptionModel;
use rf_isa::RegClass;
use std::collections::HashMap;
use std::fmt;

/// Which invariant a [`Violation`] breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// A rename claimed a register that was not free.
    DoubleAlloc,
    /// A register was freed while not live.
    DoubleFree,
    /// A physical index outside the register file.
    OutOfRange,
    /// Free/live/staged counts do not reconcile with the model or do not
    /// sum to the file size.
    FreelistConservation,
    /// A rename's displaced mapping disagrees with the model's map (or a
    /// squash rollback found the map already diverged).
    RenameMapMismatch,
    /// Two virtual registers mapped to the same physical register.
    RenameNotBijective,
    /// A committed sequence number did not strictly increase.
    CommitOutOfOrder,
    /// A squashed instruction's destination register was not returned
    /// (or the wrong register was returned).
    SquashLeak,
    /// Commit freed the wrong register for the exception model (precise
    /// commits must free the previous mapping; imprecise commits none).
    CommitFreeMismatch,
}

impl ViolationKind {
    /// All kinds, in report order.
    pub const ALL: [ViolationKind; 9] = [
        ViolationKind::DoubleAlloc,
        ViolationKind::DoubleFree,
        ViolationKind::OutOfRange,
        ViolationKind::FreelistConservation,
        ViolationKind::RenameMapMismatch,
        ViolationKind::RenameNotBijective,
        ViolationKind::CommitOutOfOrder,
        ViolationKind::SquashLeak,
        ViolationKind::CommitFreeMismatch,
    ];

    /// Kebab-case label.
    pub fn label(self) -> &'static str {
        match self {
            ViolationKind::DoubleAlloc => "double-alloc",
            ViolationKind::DoubleFree => "double-free",
            ViolationKind::OutOfRange => "out-of-range",
            ViolationKind::FreelistConservation => "freelist-conservation",
            ViolationKind::RenameMapMismatch => "rename-map-mismatch",
            ViolationKind::RenameNotBijective => "rename-not-bijective",
            ViolationKind::CommitOutOfOrder => "commit-out-of-order",
            ViolationKind::SquashLeak => "squash-leak",
            ViolationKind::CommitFreeMismatch => "commit-free-mismatch",
        }
    }
}

/// One detected invariant violation, with the offending sequence number
/// and physical register where applicable.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant broke.
    pub kind: ViolationKind,
    /// Cycle of the offending event.
    pub cycle: u64,
    /// Sequence number of the offending instruction, if tied to one.
    pub seq: Option<u64>,
    /// Register class involved, if any.
    pub class: Option<RegClass>,
    /// Physical register involved, if any.
    pub reg: Option<u32>,
    /// Human-readable context.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {:>6} ", self.cycle)?;
        match self.seq {
            Some(s) => write!(f, "seq {s:>6} ")?,
            None => write!(f, "{:>11}", "")?,
        }
        write!(f, "{}", self.kind.label())?;
        if let (Some(class), Some(reg)) = (self.class, self.reg) {
            let c = if class == RegClass::Int { "int" } else { "fp" };
            write!(f, " ({c} p{reg})")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// Allocation state of one physical register in the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RegSt {
    Free,
    Live,
    Staged,
}

impl RegSt {
    fn idx(self) -> usize {
        match self {
            RegSt::Free => 0,
            RegSt::Live => 1,
            RegSt::Staged => 2,
        }
    }

    fn label(self) -> &'static str {
        match self {
            RegSt::Free => "free",
            RegSt::Live => "live",
            RegSt::Staged => "staged",
        }
    }
}

/// A rename still in flight (inserted, neither committed nor squashed).
#[derive(Debug, Clone, Copy)]
struct RenameRec {
    class: RegClass,
    vreg: u8,
    new: u32,
    prev: u32,
}

/// Stored violations are capped so a badly corrupted stream cannot
/// balloon memory; the total count keeps counting past the cap.
const MAX_STORED_VIOLATIONS: usize = 64;

/// The sanitizer observer. Attach with
/// [`Pipeline::with_observer`](rf_core::Pipeline::with_observer) and read
/// the verdict back after [`run_observed`](rf_core::Pipeline::run_observed).
#[derive(Debug)]
pub struct Sanitizer {
    total: usize,
    model: ExceptionModel,
    /// Per-class allocation state, indexed by physical register.
    state: [Vec<RegSt>; 2],
    /// Per-class `[free, live, staged]` counts (kept incrementally).
    counts: [[usize; 3]; 2],
    /// Per-class rename map, indexed by virtual register.
    map: [[u32; 31]; 2],
    /// Per-class reverse map: which virtual register owns each physical.
    rev: [Vec<Option<u8>>; 2],
    /// Registers staged for freeing this cycle (return to Free at
    /// cycle end, mirroring `PhysRegFile::end_cycle`).
    staged_regs: [Vec<u32>; 2],
    journal: HashMap<u64, RenameRec>,
    last_commit: Option<u64>,
    events: u64,
    total_violations: u64,
    violations: Vec<Violation>,
}

impl Sanitizer {
    /// Creates a sanitizer for register files of `phys_regs` registers
    /// per class, checked against the freeing rules of `model`.
    pub fn new(phys_regs: usize, model: ExceptionModel) -> Self {
        Self {
            total: phys_regs,
            model,
            state: [vec![RegSt::Free; phys_regs], vec![RegSt::Free; phys_regs]],
            counts: [[phys_regs, 0, 0], [phys_regs, 0, 0]],
            map: [[0; 31]; 2],
            rev: [vec![None; phys_regs], vec![None; phys_regs]],
            staged_regs: [Vec::new(), Vec::new()],
            journal: HashMap::new(),
            last_commit: None,
            events: 0,
            total_violations: 0,
            violations: Vec::new(),
        }
    }

    /// Violations recorded so far (capped at 64; see
    /// [`total_violations`](Sanitizer::total_violations)).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Total violations detected, including any past the storage cap.
    pub fn total_violations(&self) -> u64 {
        self.total_violations
    }

    /// Whether no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.total_violations == 0
    }

    /// Observer hook invocations checked.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Whether any recorded violation has the given kind.
    pub fn has(&self, kind: ViolationKind) -> bool {
        self.violations.iter().any(|v| v.kind == kind)
    }

    /// Renders the verdict as a short report.
    pub fn report(&self) -> String {
        if self.is_clean() {
            return format!("sanitizer: clean ({} events checked)", self.events);
        }
        let mut out = format!(
            "sanitizer: {} violation(s) over {} events\n",
            self.total_violations, self.events
        );
        for v in &self.violations {
            out.push_str(&format!("  {v}\n"));
        }
        if self.total_violations as usize > self.violations.len() {
            out.push_str(&format!(
                "  ... and {} more (storage capped)\n",
                self.total_violations as usize - self.violations.len()
            ));
        }
        out
    }

    fn violate(
        &mut self,
        kind: ViolationKind,
        cycle: u64,
        seq: Option<u64>,
        class: Option<RegClass>,
        reg: Option<u32>,
        detail: String,
    ) {
        self.total_violations += 1;
        if self.violations.len() < MAX_STORED_VIOLATIONS {
            self.violations.push(Violation { kind, cycle, seq, class, reg, detail });
        }
    }

    fn set_state(&mut self, class: RegClass, p: u32, to: RegSt) {
        let ci = class.index();
        let old = self.state[ci][p as usize];
        self.counts[ci][old.idx()] -= 1;
        self.counts[ci][to.idx()] += 1;
        self.state[ci][p as usize] = to;
    }

    /// Processes one freeing of `(class, p)`: Live registers stage for
    /// reuse; anything else is a double free.
    fn free_one(&mut self, cycle: u64, seq: Option<u64>, class: RegClass, p: u32) {
        if p as usize >= self.total {
            self.violate(
                ViolationKind::OutOfRange,
                cycle,
                seq,
                Some(class),
                Some(p),
                format!("freed index {p} outside file of {}", self.total),
            );
            return;
        }
        let st = self.state[class.index()][p as usize];
        if st != RegSt::Live {
            self.violate(
                ViolationKind::DoubleFree,
                cycle,
                seq,
                Some(class),
                Some(p),
                format!("freed while {}", st.label()),
            );
            return;
        }
        self.set_state(class, p, RegSt::Staged);
        self.staged_regs[class.index()].push(p);
    }

    fn check_conservation(
        &mut self,
        cycle: u64,
        class: RegClass,
        free: usize,
        live: usize,
        staged: usize,
    ) {
        let ci = class.index();
        let [m_free, m_live, m_staged] = self.counts[ci];
        let sums_ok = free + live == self.total;
        let model_ok = free == m_free && staged == m_staged && live == m_live + m_staged;
        if !(sums_ok && model_ok) {
            self.violate(
                ViolationKind::FreelistConservation,
                cycle,
                None,
                Some(class),
                None,
                format!(
                    "reported free={free} live={live} staged={staged} vs model \
                     free={m_free} live={} staged={m_staged} (total {})",
                    m_live + m_staged,
                    self.total
                ),
            );
        }
    }
}

impl Observer for Sanitizer {
    fn arch_map(&mut self, class: RegClass, vreg: u8, phys: u32) {
        self.events += 1;
        if phys as usize >= self.total {
            self.violate(
                ViolationKind::OutOfRange,
                0,
                None,
                Some(class),
                Some(phys),
                format!("architectural mapping outside file of {}", self.total),
            );
            return;
        }
        if self.state[class.index()][phys as usize] != RegSt::Free {
            self.violate(
                ViolationKind::DoubleAlloc,
                0,
                None,
                Some(class),
                Some(phys),
                "architectural mapping of a non-free register".to_owned(),
            );
        }
        self.set_state(class, phys, RegSt::Live);
        self.map[class.index()][vreg as usize] = phys;
        self.rev[class.index()][phys as usize] = Some(vreg);
    }

    fn rename(&mut self, cycle: u64, seq: u64, class: RegClass, vreg: u8, new: u32, prev: u32) {
        self.events += 1;
        let ci = class.index();
        if new as usize >= self.total {
            self.violate(
                ViolationKind::OutOfRange,
                cycle,
                Some(seq),
                Some(class),
                Some(new),
                format!("renamed to index {new} outside file of {}", self.total),
            );
            return;
        }
        let actual_prev = self.map[ci][vreg as usize];
        if actual_prev != prev {
            self.violate(
                ViolationKind::RenameMapMismatch,
                cycle,
                Some(seq),
                Some(class),
                Some(prev),
                format!("claimed to displace p{prev} but v{vreg} maps to p{actual_prev}"),
            );
        }
        let st = self.state[ci][new as usize];
        if st != RegSt::Free {
            self.violate(
                ViolationKind::DoubleAlloc,
                cycle,
                Some(seq),
                Some(class),
                Some(new),
                format!("allocated while {}", st.label()),
            );
        }
        self.set_state(class, new, RegSt::Live);
        // The displaced register keeps its allocation (it frees later,
        // model-dependent); only its map ownership ends.
        if self.rev[ci][actual_prev as usize] == Some(vreg) {
            self.rev[ci][actual_prev as usize] = None;
        }
        if let Some(other) = self.rev[ci][new as usize] {
            self.violate(
                ViolationKind::RenameNotBijective,
                cycle,
                Some(seq),
                Some(class),
                Some(new),
                format!("p{new} already owned by v{other}, now also claimed by v{vreg}"),
            );
        }
        self.rev[ci][new as usize] = Some(vreg);
        self.map[ci][vreg as usize] = new;
        self.journal.insert(seq, RenameRec { class, vreg, new, prev });
    }

    fn event(&mut self, ev: TraceEvent) {
        self.events += 1;
        match ev.kind {
            EventKind::Insert | EventKind::Issue | EventKind::Complete => {}
            EventKind::Commit => {
                if self.last_commit.is_some_and(|last| ev.seq <= last) {
                    self.violate(
                        ViolationKind::CommitOutOfOrder,
                        ev.cycle,
                        Some(ev.seq),
                        None,
                        None,
                        format!(
                            "committed after seq {}",
                            self.last_commit.expect("checked")
                        ),
                    );
                }
                self.last_commit = Some(ev.seq);
                let rec = self.journal.remove(&ev.seq);
                match self.model {
                    ExceptionModel::Precise => match (rec, ev.freed) {
                        (Some(rec), Some((class, p)))
                            if class == rec.class && p == rec.prev =>
                        {
                            self.free_one(ev.cycle, Some(ev.seq), class, p);
                        }
                        (Some(rec), other) => {
                            self.violate(
                                ViolationKind::CommitFreeMismatch,
                                ev.cycle,
                                Some(ev.seq),
                                Some(rec.class),
                                Some(rec.prev),
                                format!(
                                    "precise commit must free displaced p{}, freed {:?}",
                                    rec.prev, other
                                ),
                            );
                        }
                        (None, Some((class, p))) => {
                            // No journalled destination: nothing should
                            // free here, but track it so the model stays
                            // as close to the pipeline as possible.
                            self.violate(
                                ViolationKind::CommitFreeMismatch,
                                ev.cycle,
                                Some(ev.seq),
                                Some(class),
                                Some(p),
                                "commit without a destination freed a register".to_owned(),
                            );
                        }
                        (None, None) => {}
                    },
                    ExceptionModel::Imprecise | ExceptionModel::AlphaHybrid => {
                        if let Some((class, p)) = ev.freed {
                            self.violate(
                                ViolationKind::CommitFreeMismatch,
                                ev.cycle,
                                Some(ev.seq),
                                Some(class),
                                Some(p),
                                "imprecise-model commit must not free registers".to_owned(),
                            );
                        }
                    }
                }
            }
            EventKind::Squash => match (self.journal.remove(&ev.seq), ev.freed) {
                (Some(rec), Some((class, p))) => {
                    if class != rec.class || p != rec.new {
                        self.violate(
                            ViolationKind::SquashLeak,
                            ev.cycle,
                            Some(ev.seq),
                            Some(rec.class),
                            Some(rec.new),
                            format!("squash returned p{p} instead of destination p{}", rec.new),
                        );
                    } else {
                        self.free_one(ev.cycle, Some(ev.seq), class, p);
                    }
                    // Roll the rename back. Squashes run youngest-first,
                    // so the squashed destination must be the current
                    // mapping.
                    let ci = rec.class.index();
                    if self.map[ci][rec.vreg as usize] == rec.new {
                        self.map[ci][rec.vreg as usize] = rec.prev;
                        self.rev[ci][rec.new as usize] = None;
                        self.rev[ci][rec.prev as usize] = Some(rec.vreg);
                    } else {
                        self.violate(
                            ViolationKind::RenameMapMismatch,
                            ev.cycle,
                            Some(ev.seq),
                            Some(rec.class),
                            Some(rec.new),
                            format!(
                                "squash rollback expected v{} to map to p{}, found p{}",
                                rec.vreg,
                                rec.new,
                                self.map[ci][rec.vreg as usize]
                            ),
                        );
                    }
                }
                (Some(rec), None) => {
                    self.violate(
                        ViolationKind::SquashLeak,
                        ev.cycle,
                        Some(ev.seq),
                        Some(rec.class),
                        Some(rec.new),
                        format!("squashed destination p{} never returned", rec.new),
                    );
                }
                (None, Some((class, p))) => {
                    self.violate(
                        ViolationKind::SquashLeak,
                        ev.cycle,
                        Some(ev.seq),
                        Some(class),
                        Some(p),
                        "squash freed a register with no recorded rename".to_owned(),
                    );
                }
                (None, None) => {}
            },
        }
    }

    fn reg_free(&mut self, cycle: u64, class: RegClass, phys: u32) {
        self.events += 1;
        self.free_one(cycle, None, class, phys);
    }

    fn reg_file_state(&mut self, cycle: u64, class: RegClass, free: usize, live: usize, staged: usize) {
        self.events += 1;
        self.check_conservation(cycle, class, free, live, staged);
    }

    fn cycle_end(&mut self, cycle: u64, int_free_empty: bool, fp_free_empty: bool) {
        self.events += 1;
        for (class, reported_empty) in
            [(RegClass::Int, int_free_empty), (RegClass::Fp, fp_free_empty)]
        {
            let model_empty = self.counts[class.index()][RegSt::Free.idx()] == 0;
            if reported_empty != model_empty {
                self.violate(
                    ViolationKind::FreelistConservation,
                    cycle,
                    None,
                    Some(class),
                    None,
                    format!(
                        "free-list emptiness reported {reported_empty}, model {model_empty}"
                    ),
                );
            }
            // Staged frees become reusable next cycle.
            let staged = std::mem::take(&mut self.staged_regs[class.index()]);
            for p in &staged {
                self.set_state(class, *p, RegSt::Free);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_kinds_have_unique_labels() {
        let mut labels: Vec<&str> = ViolationKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        let n = labels.len();
        labels.dedup();
        assert_eq!(labels.len(), n);
        assert_eq!(n, 9);
    }

    #[test]
    fn fresh_sanitizer_is_clean() {
        let s = Sanitizer::new(64, ExceptionModel::Precise);
        assert!(s.is_clean());
        assert_eq!(s.violations().len(), 0);
        assert!(s.report().contains("clean"));
    }

    #[test]
    fn double_free_is_detected_with_register() {
        let mut s = Sanitizer::new(64, ExceptionModel::Imprecise);
        s.arch_map(RegClass::Int, 0, 0);
        s.reg_free(5, RegClass::Int, 0);
        s.reg_free(5, RegClass::Int, 0);
        assert!(s.has(ViolationKind::DoubleFree));
        let v = &s.violations()[0];
        assert_eq!(v.reg, Some(0));
        assert_eq!(v.cycle, 5);
    }

    #[test]
    fn out_of_range_free_is_detected() {
        let mut s = Sanitizer::new(64, ExceptionModel::Imprecise);
        s.reg_free(1, RegClass::Fp, 10_000);
        assert!(s.has(ViolationKind::OutOfRange));
    }

    #[test]
    fn conservation_mismatch_is_detected() {
        let mut s = Sanitizer::new(64, ExceptionModel::Precise);
        s.arch_map(RegClass::Int, 0, 0);
        // Model: 63 free, 1 live; report something else.
        s.reg_file_state(3, RegClass::Int, 64, 0, 0);
        assert!(s.has(ViolationKind::FreelistConservation));
    }

    #[test]
    fn violation_storage_caps_but_count_continues() {
        let mut s = Sanitizer::new(64, ExceptionModel::Imprecise);
        for _ in 0..100 {
            s.reg_free(1, RegClass::Int, 7);
        }
        assert_eq!(s.violations().len(), MAX_STORED_VIOLATIONS);
        assert_eq!(s.total_violations(), 100);
        assert!(s.report().contains("more"));
    }
}
