//! # rfstudy — register file design in dynamically scheduled processors
//!
//! A reproduction of Farkas, Jouppi, and Chow, *Register File Design
//! Considerations in Dynamically Scheduled Processors* (HPCA 1996 / DEC WRL
//! Research Report 95/10), built as a family of Rust crates:
//!
//! * [`isa`] — the abstract Alpha-like micro-op ISA,
//! * [`bpred`] — the McFarling combining branch predictor,
//! * [`mem`] — perfect / lockup / lockup-free data caches with inverted MSHRs,
//! * [`workload`] — synthetic SPEC92-profile trace generators,
//! * [`core`] — the cycle-level out-of-order pipeline and register-file
//!   liveness accounting,
//! * [`timing`] — the multiported register-file cycle-time and BIPS model,
//! * [`experiments`] — harnesses that regenerate every table and figure of
//!   the paper's evaluation.
//!
//! This facade crate re-exports each sub-crate under a short module name, so
//! a downstream user can depend on `rfstudy` alone.
//!
//! # Quickstart
//!
//! ```
//! use rfstudy::core::{ExceptionModel, MachineConfig, Pipeline};
//! use rfstudy::mem::CacheOrg;
//! use rfstudy::workload::{spec92, TraceGenerator};
//!
//! // Four-way issue machine: 32-entry dispatch queue, 64+64 physical
//! // registers, precise exceptions, lockup-free cache.
//! let config = MachineConfig::new(4)
//!     .dispatch_queue(32)
//!     .physical_regs(64)
//!     .exceptions(ExceptionModel::Precise)
//!     .cache(CacheOrg::LockupFree);
//!
//! let profile = spec92::compress();
//! let mut trace = TraceGenerator::new(&profile, 1);
//! let stats = Pipeline::new(config).run(&mut trace, 20_000);
//! assert!(stats.commit_ipc() > 0.5);
//! ```

#![warn(missing_docs)]

pub use rf_bpred as bpred;
pub use rf_core as core;
pub use rf_experiments as experiments;
pub use rf_isa as isa;
pub use rf_mem as mem;
pub use rf_timing as timing;
pub use rf_workload as workload;
