//! The `rfstudy` command-line simulator.
//!
//! Run `rfstudy help` for usage. Commands: `list`, `run`, `record`,
//! `replay`, `check`, `model`, `profile`, `top`, `dump`, `dataflow`,
//! `report`, `timing`.
//!
//! Exit status: 0 on success, 1 on a runtime failure (simulation error,
//! sanitizer violation, failed gate, exceeded deadline), 2 on a usage
//! error (unknown command/option, malformed value, or a `top` attach to
//! a telemetry stream file that does not exist).

mod cli;

use cli::{Command, MachineOpts, StoreAction, TraceFormat};
use rf_check::{CheckParams, Sanitizer};
use rf_core::dataflow::analyze;
use rf_core::{CancelToken, Cancelled, LiveModel, Pipeline, SimStats};
use std::collections::HashMap;
use rf_obs::Recorder;
use rf_isa::RegClass;
use rf_timing::{RegFileGeometry, TimingModel};
use rf_workload::{spec92, trace_io, TraceGenerator, WrongPathGenerator};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match cli::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", cli::USAGE);
            return ExitCode::from(2);
        }
    };
    // Attaching to a stream file that does not exist is a usage error
    // (exit 2), not something to hang on: without `--spawn` no producer
    // is coming, so waiting for the file would wait forever.
    if let Command::Top { file, spawn: false, .. } = &cmd {
        if !std::path::Path::new(file).exists() {
            eprintln!(
                "error: telemetry stream {file:?} does not exist \
                 (run the suite with RF_TELEMETRY=1, or use --spawn)"
            );
            return ExitCode::from(2);
        }
    }
    match dispatch(cmd) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Help => {
            println!("{}", cli::USAGE);
            Ok(())
        }
        Command::List => {
            println!("{:<10} {:>6} {:>6} {:>8}", "benchmark", "fp?", "loops", "body");
            for p in spec92::all() {
                println!(
                    "{:<10} {:>6} {:>6} {:>8}",
                    p.name,
                    if p.is_fp_intensive() { "fp" } else { "int" },
                    p.loops.n_loops,
                    p.loops.body_len
                );
            }
            Ok(())
        }
        Command::Run { bench, commits, deadline_secs, machine } => {
            let profile =
                spec92::by_name(&bench).ok_or_else(|| format!("unknown benchmark {bench:?}"))?;
            let mut trace = TraceGenerator::new(&profile, machine.seed);
            // The watchdog thread fires the token after the wall budget;
            // the pipeline polls it cooperatively and discards its partial
            // state. The thread is detached — it holds only a token clone,
            // and the process outlives any still-pending sleep by at most
            // the time it takes `main` to return.
            let cancel = deadline_secs.map(|secs| {
                let token = CancelToken::new();
                let armed = token.clone();
                std::thread::spawn(move || {
                    std::thread::sleep(std::time::Duration::from_secs_f64(secs));
                    armed.cancel();
                });
                token
            });
            let deadline_err = |c: Cancelled| {
                format!(
                    "deadline of {}s exceeded at cycle {} (partial statistics discarded)",
                    deadline_secs.unwrap_or_default(),
                    c.at_cycle
                )
            };
            if rf_check::sanitize_enabled() {
                let sanitizer = Sanitizer::new(machine.regs, machine.exceptions);
                let mut pipeline = Pipeline::with_observer(machine.to_config(), sanitizer);
                if let Some(token) = cancel {
                    pipeline = pipeline.with_cancel(token);
                }
                let (stats, sanitizer) =
                    pipeline.try_run_observed(&mut trace, commits).map_err(deadline_err)?;
                print_stats(&bench, &stats);
                println!("{}", sanitizer.report());
                if !sanitizer.is_clean() {
                    return Err(format!(
                        "sanitizer detected {} invariant violation(s)",
                        sanitizer.total_violations()
                    ));
                }
            } else {
                let mut pipeline = Pipeline::new(machine.to_config());
                if let Some(token) = cancel {
                    pipeline = pipeline.with_cancel(token);
                }
                let stats = pipeline.try_run(&mut trace, commits).map_err(deadline_err)?;
                print_stats(&bench, &stats);
            }
            Ok(())
        }
        Command::Trace { bench, commits, format, window, out, machine } => {
            let profile =
                spec92::by_name(&bench).ok_or_else(|| format!("unknown benchmark {bench:?}"))?;
            let mut trace = TraceGenerator::new(&profile, machine.seed);
            let recorder = match window {
                Some(w) => Recorder::with_window(w),
                None => Recorder::unbounded(),
            };
            let (stats, mut recorder) = Pipeline::with_observer(machine.to_config(), recorder)
                .run_observed(&mut trace, commits);
            recorder.seal();
            let rendered = match format {
                TraceFormat::Chrome => rf_obs::chrome_trace(&recorder),
                TraceFormat::Text => rf_obs::text_timeline(&recorder),
                TraceFormat::Summary => rf_obs::summary(&recorder, &stats),
            };
            match out {
                Some(path) => {
                    std::fs::write(&path, &rendered)
                        .map_err(|e| format!("cannot write {path:?}: {e}"))?;
                    eprintln!(
                        "traced {} commits of {bench} over {} cycles -> {path} ({} bytes)",
                        stats.committed,
                        stats.cycles,
                        rendered.len()
                    );
                }
                None => print!("{rendered}"),
            }
            Ok(())
        }
        Command::Record { bench, out, count, seed } => {
            let profile =
                spec92::by_name(&bench).ok_or_else(|| format!("unknown benchmark {bench:?}"))?;
            let mut file = std::fs::File::create(&out)
                .map_err(|e| format!("cannot create {out:?}: {e}"))?;
            let gen = TraceGenerator::new(&profile, seed);
            let n = trace_io::write_trace(&mut file, gen.take(count as usize))
                .map_err(|e| format!("write failed: {e}"))?;
            println!("recorded {n} instructions of {bench} to {out}");
            Ok(())
        }
        Command::Replay { trace, commits, machine } => {
            let mut file =
                std::fs::File::open(&trace).map_err(|e| format!("cannot open {trace:?}: {e}"))?;
            let insts =
                trace_io::read_trace(&mut file).map_err(|e| format!("bad trace: {e}"))?;
            let n = insts.len() as u64;
            let target = if commits == 0 { n } else { commits.min(n) };
            run_replay(&trace, insts, target, &machine)
        }
        Command::Check { pins, deadline_secs } => run_check(&pins, deadline_secs),
        Command::Model { pins, check, format, deadline_secs } => {
            run_model(&pins, check, format, deadline_secs)
        }
        Command::Profile { pins, format, top, out, deadline_secs } => {
            run_profile(&pins, format, top, out, deadline_secs)
        }
        Command::Top { file, ledger, interval_ms, once, spawn } => {
            run_top(&file, &ledger, interval_ms, once, spawn)
        }
        Command::Report {
            ledger,
            baseline,
            window,
            format,
            out,
            prom,
            check,
            max_regress_pct,
            band_scale,
            fidelity,
            profile_drift,
        } => run_report(
            &ledger,
            baseline,
            window,
            format,
            out,
            prom,
            check,
            max_regress_pct,
            band_scale,
            fidelity,
            profile_drift,
        ),
        Command::Dataflow { bench, window, count } => {
            let profile =
                spec92::by_name(&bench).ok_or_else(|| format!("unknown benchmark {bench:?}"))?;
            let gen = TraceGenerator::new(&profile, 1);
            let limit = analyze(gen.take(count as usize), window);
            println!("benchmark      : {bench}");
            println!("instructions   : {}", limit.instructions);
            println!("critical path  : {} cycles", limit.critical_path);
            match window {
                Some(w) => println!("dataflow IPC   : {:.2} (window {w})", limit.ipc()),
                None => println!("dataflow IPC   : {:.2} (unbounded)", limit.ipc()),
            }
            Ok(())
        }
        Command::Dump { trace, count } => {
            let mut file =
                std::fs::File::open(&trace).map_err(|e| format!("cannot open {trace:?}: {e}"))?;
            let insts =
                trace_io::read_trace(&mut file).map_err(|e| format!("bad trace: {e}"))?;
            let limit = if count == 0 { insts.len() } else { count as usize };
            for inst in insts.iter().take(limit) {
                println!("{:#010x}: {inst}", inst.pc());
            }
            Ok(())
        }
        Command::Store { action, dir } => run_store(action, dir.as_deref()),
        Command::Timing { width } => {
            let model = TimingModel::cmos_05um();
            println!("{width}-way issue register-file timing (0.5um CMOS)");
            println!("{:>6} {:>14} {:>14}", "regs", "int cycle (ns)", "fp cycle (ns)");
            for regs in [32usize, 48, 64, 80, 96, 128, 160, 256] {
                println!(
                    "{regs:>6} {:>14.3} {:>14.3}",
                    model.cycle_time_ns(&RegFileGeometry::int_for_width(width, regs)),
                    model.cycle_time_ns(&RegFileGeometry::fp_for_width(width, regs)),
                );
            }
            Ok(())
        }
    }
}

fn run_replay(
    name: &str,
    insts: Vec<rf_isa::Instruction>,
    commits: u64,
    machine: &MachineOpts,
) -> Result<(), String> {
    // Wrong-path instructions come from a generic profile (the trace file
    // does not know which benchmark it came from).
    let mut wp = WrongPathGenerator::new(&spec92::compress(), machine.seed);
    let mut trace = insts.into_iter();
    if rf_check::sanitize_enabled() {
        let sanitizer = Sanitizer::new(machine.regs, machine.exceptions);
        let (stats, sanitizer) = Pipeline::with_observer(machine.to_config(), sanitizer)
            .run_with_observed(&mut trace, &mut wp, commits);
        print_stats(name, &stats);
        println!("{}", sanitizer.report());
        if !sanitizer.is_clean() {
            return Err(format!(
                "sanitizer detected {} invariant violation(s)",
                sanitizer.total_violations()
            ));
        }
    } else {
        let stats = Pipeline::new(machine.to_config()).run_with(&mut trace, &mut wp, commits);
        print_stats(name, &stats);
    }
    Ok(())
}

/// The `check` subcommand: cross-validates the simulator against the
/// static oracle over the requested configuration matrix (the full
/// default matrix when no dimension is pinned).
fn run_check(pins: &cli::MatrixPins, deadline_secs: Option<f64>) -> Result<(), String> {
    let matrix = pins.expand()?;
    // Same watchdog shape as `run`: a detached thread fires the token
    // after the wall budget; every cross-validation pipeline polls it
    // cooperatively, so the deadline covers the whole matrix, not each
    // configuration separately.
    let cancel = deadline_secs.map(|secs| {
        let token = CancelToken::new();
        let armed = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_secs_f64(secs));
            armed.cancel();
        });
        token
    });

    let mut failures = 0u64;
    let mut runs = 0u64;
    for params in &matrix {
        let report = rf_check::cross_validate_cancellable(params, cancel.as_ref())?;
        runs += 1;
        if report.passed() {
            // One summary line per clean configuration.
            print!("{}", report.render().lines().next().unwrap_or(""));
            println!();
        } else {
            failures += 1;
            print!("{}", report.render());
        }
    }
    println!("check: {runs} configurations, {failures} failed");
    if failures > 0 {
        Err(format!("{failures} configuration(s) failed cross-validation"))
    } else {
        Ok(())
    }
}

/// The simulator run spec matching one check-matrix point.
fn spec_for(p: &CheckParams) -> rf_experiments::runner::RunSpec {
    let mut spec = rf_experiments::runner::RunSpec::baseline(&p.bench, p.width)
        .regs(p.regs)
        .exceptions(p.exceptions)
        .commits(p.commits);
    spec.seed = p.seed;
    spec
}

/// Per-configuration cap on the model's absolute IPC error in
/// `model --check`; individual configurations may sit in the curve's
/// hardest corners, so this is looser than the matrix-wide mean gate.
const MODEL_CONFIG_ERR_CAP_PCT: f64 = 40.0;
/// Matrix-wide mean absolute IPC error gate for `model --check`.
const MODEL_MEAN_ERR_CAP_PCT: f64 = 15.0;

/// The `model` subcommand: evaluates the static analytic estimator over
/// the requested slice of the check matrix without simulating. Workload
/// summaries depend only on (benchmark, width) — the machine knobs that
/// change inside a matrix slice (registers, exception model) enter only
/// at evaluation time — so they are memoized and each configuration is
/// a microsecond-scale closed-form evaluation on a cached summary.
fn run_model(
    pins: &cli::MatrixPins,
    check: bool,
    format: cli::ModelFormat,
    deadline_secs: Option<f64>,
) -> Result<(), String> {
    let matrix = pins.expand()?;
    let extract = std::time::Instant::now();
    let mut summaries: HashMap<(String, usize), rf_model::WorkloadSummary> = HashMap::new();
    for p in &matrix {
        let config = rf_check::config_for(p);
        summaries.entry((p.bench.clone(), p.width)).or_insert_with(|| {
            rf_model::summarize(
                &p.bench,
                p.commits,
                p.seed,
                config.effective_insert_bandwidth(),
                config.cache_geometry(),
                config.cache_org(),
                config.predictor_kind(),
            )
            .expect("benchmark validated by MatrixPins::expand")
        });
    }
    let extract_ns = extract.elapsed().as_nanos() as u64;
    let eval = std::time::Instant::now();
    let estimates: Vec<rf_model::ModelEstimate> = matrix
        .iter()
        .map(|p| {
            let config = rf_check::config_for(p);
            rf_model::evaluate(&summaries[&(p.bench.clone(), p.width)], &config)
        })
        .collect();
    let eval_ns = eval.elapsed().as_nanos() as u64;

    if check {
        return model_check(&matrix, &summaries, &estimates, extract_ns, eval_ns, deadline_secs);
    }
    match format {
        cli::ModelFormat::Json => {
            use rf_obs::json::Value;
            let arr: Vec<Value> = matrix
                .iter()
                .zip(&estimates)
                .map(|(p, e)| {
                    Value::Object(vec![
                        ("bench".into(), Value::String(p.bench.clone())),
                        ("width".into(), Value::Number(p.width as f64)),
                        ("exceptions".into(), Value::String(p.exceptions.to_string())),
                        ("regs".into(), Value::Number(p.regs as f64)),
                        ("commits".into(), Value::Number(p.commits as f64)),
                        ("seed".into(), Value::Number(p.seed as f64)),
                        ("ipc".into(), Value::Number(e.ipc)),
                        ("fu_occupancy".into(), Value::Number(e.fu_occupancy)),
                        ("dq_occupancy".into(), Value::Number(e.dq_occupancy)),
                        ("regs_live_committed".into(), Value::Number(e.regs_live_committed)),
                        ("regs_live_awaiting".into(), Value::Number(e.regs_live_awaiting)),
                        ("regs_live_exec".into(), Value::Number(e.regs_live_exec)),
                        ("regs_peak_int".into(), Value::Number(e.regs_peak[0] as f64)),
                        ("regs_peak_fp".into(), Value::Number(e.regs_peak[1] as f64)),
                    ])
                })
                .collect();
            println!("{}", Value::Array(arr));
        }
        cli::ModelFormat::Text => {
            for (p, e) in matrix.iter().zip(&estimates) {
                println!(
                    "model {} width={} {} regs={} commits={} seed={}: \
                     ipc {:.2} fu {:.2} dq {:.1} live c/a/e {:.1}/{:.1}/{:.1} peak int/fp {}/{}",
                    p.bench,
                    p.width,
                    p.exceptions,
                    p.regs,
                    p.commits,
                    p.seed,
                    e.ipc,
                    e.fu_occupancy,
                    e.dq_occupancy,
                    e.regs_live_committed,
                    e.regs_live_awaiting,
                    e.regs_live_exec,
                    e.regs_peak[0],
                    e.regs_peak[1],
                );
            }
        }
    }
    Ok(())
}

/// `model --check`: one simulation per configuration, reconciled
/// against the analytic estimate. Gates: per-configuration |IPC error|
/// within [`MODEL_CONFIG_ERR_CAP_PCT`], matrix-wide mean within
/// [`MODEL_MEAN_ERR_CAP_PCT`], and every register-pressure peak inside
/// the static oracle's [floor, ceiling] bracket (the same bracket
/// `rfstudy check` holds the simulator to). The optional deadline
/// bounds the whole validation batch, matching `rfstudy check`.
fn model_check(
    matrix: &[CheckParams],
    summaries: &HashMap<(String, usize), rf_model::WorkloadSummary>,
    estimates: &[rf_model::ModelEstimate],
    extract_ns: u64,
    eval_ns: u64,
    deadline_secs: Option<f64>,
) -> Result<(), String> {
    use rf_experiments::runner::{BatchOpts, RunCache, SimPool};
    let specs: Vec<_> = matrix.iter().map(spec_for).collect();
    let opts = deadline_secs.map_or_else(BatchOpts::unbounded, |secs| {
        BatchOpts::with_deadline(std::time::Duration::from_secs_f64(secs))
    });
    let sim_wall = std::time::Instant::now();
    let results = SimPool::from_env().try_run_many_opts(&specs, &RunCache::disabled(), opts);
    let sim_ns = sim_wall.elapsed().as_nanos() as u64;

    let mut failures = 0u64;
    let mut sum_abs = 0.0;
    let mut worst: (f64, String) = (0.0, String::from("-"));
    for ((p, e), result) in matrix.iter().zip(estimates).zip(results) {
        let stats = result.map_err(|err| format!("simulation failed: {err}"))?;
        let sim_ipc = stats.commit_ipc();
        let err_pct =
            if sim_ipc > 0.0 { 100.0 * (e.ipc - sim_ipc) / sim_ipc } else { 0.0 };
        sum_abs += err_pct.abs();
        let label =
            format!("{} width={} {} regs={}", p.bench, p.width, p.exceptions, p.regs);
        if err_pct.abs() > worst.0 {
            worst = (err_pct.abs(), label.clone());
        }
        let oracle = &summaries[&(p.bench.clone(), p.width)].stats.oracle;
        let slack = stats.inserted.saturating_sub(stats.committed);
        let mut brackets_ok = true;
        for class in [RegClass::Int, RegClass::Fp] {
            let ceiling = oracle.upper_bound(class, p.regs, slack);
            let floor = oracle.classes[class.index()].floor.min(ceiling);
            let peak = e.regs_peak[class.index()];
            if peak < floor || peak > ceiling {
                brackets_ok = false;
            }
        }
        let pass = err_pct.abs() <= MODEL_CONFIG_ERR_CAP_PCT && brackets_ok;
        if !pass {
            failures += 1;
        }
        println!(
            "model {label} commits={} seed={}: model {:.2} sim {:.2} err {:+.1}% brackets {}: {}",
            p.commits,
            p.seed,
            e.ipc,
            sim_ipc,
            err_pct,
            if brackets_ok { "ok" } else { "VIOLATED" },
            if pass { "PASS" } else { "FAIL" },
        );
    }
    let n = matrix.len().max(1);
    let mean = sum_abs / n as f64;
    let per_eval_ns = eval_ns / n as u64;
    let per_sim_ns = sim_ns / n as u64;
    println!(
        "model check: {} configurations, mean |IPC error| {mean:.1}% (gate {MODEL_MEAN_ERR_CAP_PCT:.0}%), worst {:.1}% ({}), {failures} failed",
        matrix.len(),
        worst.0,
        worst.1,
    );
    println!(
        "model cost: {:.1}ms extraction (once per bench/width), {per_eval_ns}ns/config evaluation vs {:.2}ms/config simulation ({:.0}x)",
        extract_ns as f64 / 1e6,
        per_sim_ns as f64 / 1e6,
        per_sim_ns as f64 / per_eval_ns.max(1) as f64,
    );
    if failures > 0 {
        return Err(format!("{failures} configuration(s) exceeded the model error gates"));
    }
    if mean > MODEL_MEAN_ERR_CAP_PCT {
        return Err(format!(
            "mean |IPC error| {mean:.1}% exceeds the {MODEL_MEAN_ERR_CAP_PCT:.0}% gate"
        ));
    }
    Ok(())
}

/// The `profile` subcommand: forces the rf-prof self-profiler on, runs
/// the requested slice of the check matrix through a single-worker pool
/// (serial execution keeps wall time and attributed span time on the
/// same clock, so the coverage line below is meaningful), and renders
/// where the time went.
fn run_profile(
    pins: &cli::MatrixPins,
    format: cli::ProfileFormat,
    top: usize,
    out: Option<String>,
    deadline_secs: Option<f64>,
) -> Result<(), String> {
    use rf_experiments::runner::{BatchOpts, RunCache, SimPool};
    let matrix = pins.expand()?;
    let commits = matrix.first().map_or(0, |p| p.commits);
    let specs: Vec<_> = matrix.iter().map(spec_for).collect();
    let opts = deadline_secs.map_or_else(BatchOpts::unbounded, |secs| {
        BatchOpts::with_deadline(std::time::Duration::from_secs_f64(secs))
    });

    rf_prof::set_enabled(true);
    let wall = std::time::Instant::now();
    // A fresh disabled cache so every configuration actually simulates:
    // cache hits would attribute near-zero time and skew the profile.
    let results = SimPool::new(1).try_run_many_opts(&specs, &RunCache::disabled(), opts);
    let wall_ns = wall.elapsed().as_nanos() as u64;
    let root = rf_prof::collect();
    rf_prof::set_enabled(false);
    if let Some(err) = results.into_iter().find_map(Result::err) {
        return Err(format!("profiled batch failed: {err}"));
    }
    let root = root.ok_or("profiler recorded no spans")?;

    let attributed = root.attributed_ns();
    let coverage_pct = 100.0 * attributed as f64 / wall_ns.max(1) as f64;
    let rendered = match format {
        cli::ProfileFormat::Flame => rf_obs::profile::collapsed(&root),
        cli::ProfileFormat::Json => format!("{}\n", rf_obs::profile::to_value(&root)),
        cli::ProfileFormat::Text => format!(
            "{}attributed {:.1}% of {:.3}s wall time ({} configurations, {} commits each)\n",
            rf_obs::profile::text_table(&root, top),
            coverage_pct,
            wall_ns as f64 / 1e9,
            specs.len(),
            commits,
        ),
    };
    match out {
        Some(path) => {
            std::fs::write(&path, &rendered)
                .map_err(|e| format!("cannot write {path:?}: {e}"))?;
            eprintln!(
                "profile -> {path} ({} bytes, {:.1}% of wall time attributed)",
                rendered.len(),
                coverage_pct
            );
        }
        None => print!("{rendered}"),
    }
    Ok(())
}

/// Harness execution order from the most recent ledger record. The
/// median map is keyed by name and loses order, but the latest record's
/// harness array preserves the order the suite actually ran in.
fn latest_plan(records: &[rf_obs::json::Value]) -> Vec<String> {
    records
        .last()
        .and_then(|r| r.get("harnesses"))
        .and_then(rf_obs::json::Value::as_array)
        .map(|hs| hs.iter().filter_map(|h| h.get_str("name").map(str::to_owned)).collect())
        .unwrap_or_default()
}

/// Suite ETA in seconds: each remaining harness is charged its ledger
/// median (names without history are charged the median of the known
/// medians), and the in-flight harness is charged whatever of its
/// median is left. `None` without a plan or any history — an honest
/// "unknown" beats a fabricated zero.
fn top_eta(
    plan: &[String],
    medians: &[(String, f64)],
    suite: &rf_obs::live::SuiteView,
) -> Option<f64> {
    if plan.is_empty() || medians.is_empty() {
        return None;
    }
    let mut known: Vec<f64> = medians.iter().map(|(_, s)| *s).collect();
    known.sort_by(f64::total_cmp);
    let mid = known.len() / 2;
    let fallback =
        if known.len().is_multiple_of(2) { (known[mid - 1] + known[mid]) / 2.0 } else { known[mid] };
    let cost =
        |name: &str| medians.iter().find(|(n, _)| n == name).map_or(fallback, |(_, s)| *s);
    let mut eta = 0.0;
    for name in plan.iter().skip(suite.done as usize) {
        if Some(name.as_str()) == suite.current.as_deref() {
            eta += (cost(name) - suite.current_elapsed_s).max(0.0);
        } else {
            eta += cost(name);
        }
    }
    Some(eta)
}

/// `[#####-----]` with `frac` of `width` cells filled.
fn bar(frac: f64, width: usize) -> String {
    let filled = (frac.clamp(0.0, 1.0) * width as f64).round() as usize;
    format!("[{}{}]", "#".repeat(filled), "-".repeat(width - filled))
}

/// `1234567.0` -> `"1.23M"`; keeps dashboard columns narrow.
fn human_count(n: f64) -> String {
    if n >= 1e9 {
        format!("{:.2}G", n / 1e9)
    } else if n >= 1e6 {
        format!("{:.2}M", n / 1e6)
    } else if n >= 1e3 {
        format!("{:.1}k", n / 1e3)
    } else {
        format!("{n:.0}")
    }
}

/// One dashboard frame for `rfstudy top`, rendered from the parsed
/// telemetry stream. Rates and worker utilization come from the delta
/// between the last two snapshots (cumulative values when only one
/// exists yet); the ETA weighs the remaining plan by ledger medians.
fn render_top_frame(
    file: &str,
    header: Option<&rf_obs::live::StreamHeader>,
    snaps: &[rf_obs::live::Snap],
    plan: &[String],
    medians: &[(String, f64)],
) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "rfstudy top — {file}");
    let Some(last) = snaps.last() else {
        let _ = writeln!(out, "waiting for first snapshot...");
        return out;
    };
    if let Some(h) = header {
        let _ = writeln!(
            out,
            "run: commits={} jobs={} interval={}ms   elapsed {:.1}s{}",
            h.commits,
            h.jobs,
            h.interval_ms,
            last.elapsed_s,
            if last.is_final { "   FINISHED" } else { "" },
        );
    }
    let s = &last.suite;
    let done_frac = if s.total > 0 { s.done as f64 / s.total as f64 } else { 0.0 };
    let current = s
        .current
        .as_ref()
        .map_or_else(String::new, |n| format!("   current {n} ({:.1}s)", s.current_elapsed_s));
    let eta = top_eta(plan, medians, s)
        .map_or_else(|| "--".to_owned(), |e| format!("{e:.1}s"));
    let _ = writeln!(
        out,
        "suite: {} {}/{} harnesses{current}   eta {eta}",
        bar(done_frac, 20),
        s.done,
        s.total,
    );
    let c = &last.counters;
    let prev = (snaps.len() >= 2).then(|| &snaps[snaps.len() - 2]);
    let (delta_committed, window_s) = match prev {
        Some(p) => (
            c.instructions_committed.saturating_sub(p.counters.instructions_committed) as f64,
            last.elapsed_s - p.elapsed_s,
        ),
        None => (c.instructions_committed as f64, last.elapsed_s),
    };
    let rate = if window_s > 0.0 { delta_committed / window_s } else { 0.0 };
    let _ = writeln!(
        out,
        "sims: {} done / {} failed / {} cached / {} pruned ({} started, {} in flight)   \
         commits/s {}",
        c.sims_completed,
        c.sims_failed,
        c.sims_cached,
        c.sims_pruned,
        c.sims_started,
        c.sims_started.saturating_sub(c.sims_completed + c.sims_failed),
        human_count(rate),
    );
    let lookups = c.cache_hits + c.cache_misses;
    let hit_pct = if lookups > 0 { 100.0 * c.cache_hits as f64 / lookups as f64 } else { 0.0 };
    let _ = writeln!(
        out,
        "cache: {} hits / {} misses ({hit_pct:.1}% hit rate)   evictions {}   committed {}",
        c.cache_hits,
        c.cache_misses,
        c.cache_evictions,
        human_count(c.instructions_committed as f64),
    );
    if !last.workers.is_empty() {
        let _ = writeln!(out, "workers:");
        for w in &last.workers {
            let base = prev
                .and_then(|p| p.workers.iter().find(|pw| pw.id == w.id))
                .map_or(0, |pw| pw.busy_ns);
            let busy_s = w.busy_ns.saturating_sub(base) as f64 / 1e9;
            let util = if window_s > 0.0 { busy_s / window_s } else { 0.0 };
            let _ = writeln!(
                out,
                "  w{} {} {:>5.1}%  {} sims",
                w.id,
                bar(util, 20),
                100.0 * util,
                w.sims,
            );
        }
    }
    out
}

/// The `top` subcommand: attaches to the live telemetry stream the
/// suite runner writes under `RF_TELEMETRY=1` and renders an in-place
/// dashboard (suite progress, throughput, cache effectiveness, worker
/// utilization, ledger-weighted ETA), refreshed every `interval_ms`
/// until the stream's final snapshot arrives. `--once` renders a single
/// plain frame (no escape codes) and exits, failing immediately when
/// the stream is missing or malformed. `--spawn` resets the stream
/// file, launches the suite runner (`all`, expected next to this
/// executable) with telemetry enabled, attaches to it, and propagates
/// its exit status.
fn run_top(
    file: &str,
    ledger_path: &str,
    interval_ms: u64,
    once: bool,
    spawn: bool,
) -> Result<(), String> {
    let mut child = None;
    if spawn {
        let exe =
            std::env::current_exe().map_err(|e| format!("cannot locate this executable: {e}"))?;
        let suite = exe.with_file_name("all");
        // A stale stream ending in a final snapshot would end the attach
        // loop before the new run writes its header.
        match std::fs::remove_file(file) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(format!("cannot reset {file}: {e}")),
        }
        let spawned = std::process::Command::new(&suite)
            .env("RF_TELEMETRY", "1")
            .env("RF_TELEMETRY_INTERVAL_MS", interval_ms.to_string())
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .map_err(|e| format!("cannot spawn suite runner {}: {e}", suite.display()))?;
        child = Some(spawned);
    }
    if once {
        // One-shot with a spawned run: wait it out, then render its
        // closing frame below instead of leaving an orphan behind.
        if let Some(c) = child.as_mut() {
            let status =
                c.wait().map_err(|e| format!("cannot reap spawned suite runner: {e}"))?;
            if !status.success() {
                return Err(format!("spawned suite runner failed ({status})"));
            }
        }
    }

    let records =
        rf_obs::ledger::read_ledger(std::path::Path::new(ledger_path)).unwrap_or_default();
    let plan = latest_plan(&records);
    let mut reported_wait = false;
    let mut child_already_exited = false;
    loop {
        let parsed = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read {file}: {e}"))
            .and_then(|text| rf_obs::live::parse_stream(&text));
        match parsed {
            Ok((header, snaps)) => {
                let medians = rf_obs::ledger::harness_median_seconds(
                    &records,
                    header.as_ref().map(|h| h.commits),
                );
                let frame = render_top_frame(file, header.as_ref(), &snaps, &plan, &medians);
                if once {
                    print!("{frame}");
                    return Ok(());
                }
                // Clear + home: redraw in place instead of scrolling.
                print!("\x1b[2J\x1b[H{frame}");
                use std::io::Write as _;
                let _ = std::io::stdout().flush();
                if snaps.last().is_some_and(|s| s.is_final) {
                    break;
                }
                if child_already_exited {
                    // One grace poll already happened; the run died
                    // without closing its stream.
                    return Err(format!(
                        "spawned suite runner exited without a final snapshot in {file}"
                    ));
                }
            }
            Err(e) => {
                // Attaching before the run starts and torn in-flight
                // appends are both transient while a producer may still
                // show up; `--once` treats them as hard errors instead.
                if once {
                    return Err(e);
                }
                if !reported_wait {
                    println!("waiting for telemetry stream: {e}");
                    reported_wait = true;
                }
            }
        }
        if let Some(c) = child.as_mut() {
            if !child_already_exited && matches!(c.try_wait(), Ok(Some(_))) {
                // Grant one more poll so a final snapshot racing the
                // process exit still gets rendered.
                child_already_exited = true;
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
    if let Some(mut c) = child {
        let status = c.wait().map_err(|e| format!("cannot reap spawned suite runner: {e}"))?;
        if !status.success() {
            return Err(format!("spawned suite runner failed ({status})"));
        }
    }
    Ok(())
}

/// The `store` subcommand: inspects or maintains the durable
/// content-addressed run store that suite runs populate under
/// `RF_STORE=1`. The directory resolves `--dir`, then `RF_STORE_DIR`,
/// then `results/store` — the same default the write path uses.
fn run_store(action: StoreAction, dir: Option<&str>) -> Result<(), String> {
    let dir: std::path::PathBuf = match dir {
        Some(d) => d.into(),
        None => std::env::var("RF_STORE_DIR")
            .ok()
            .filter(|v| !v.trim().is_empty())
            .map_or_else(|| "results/store".into(), Into::into),
    };
    // Opening would create an empty store; maintenance on a store that
    // was never written is a mistake worth reporting instead.
    if !dir.is_dir() {
        return Err(format!(
            "store directory {} does not exist (populate it with an RF_STORE=1 suite run)",
            dir.display()
        ));
    }
    let store =
        rf_store::Store::open(&dir).map_err(|e| format!("cannot open store: {e}"))?;
    let fmt_schemas = |schemas: &std::collections::BTreeMap<u32, u64>| -> String {
        if schemas.is_empty() {
            "none".to_owned()
        } else {
            schemas
                .iter()
                .map(|(schema, n)| format!("v{schema}: {n}"))
                .collect::<Vec<_>>()
                .join(", ")
        }
    };
    match action {
        StoreAction::Stats => {
            let snap = store.snapshot().map_err(|e| format!("cannot read store: {e}"))?;
            println!("store            : {}", dir.display());
            println!("live entries     : {}", snap.len());
            println!("records scanned  : {}", snap.records);
            println!("segments         : {}", snap.segment_count());
            println!("bytes            : {}", snap.bytes);
            println!("torn tails       : {}", snap.torn);
            println!("corrupt records  : {}", snap.corrupt);
            println!("schema mix       : {}", fmt_schemas(&snap.schemas));
            Ok(())
        }
        StoreAction::Verify => {
            let snap = store.snapshot().map_err(|e| format!("cannot read store: {e}"))?;
            let report = snap.verify();
            println!(
                "verified {} live record(s) over {} bytes: {} bad checksum, \
                 {} corrupt, {} torn (schema mix {})",
                report.live,
                report.bytes,
                report.bad_checksum,
                report.corrupt,
                report.torn,
                fmt_schemas(&report.schemas),
            );
            if report.is_clean() {
                Ok(())
            } else {
                Err(format!(
                    "store verification failed: {} bad-checksum and {} corrupt record(s) \
                     (compact to drop them)",
                    report.bad_checksum, report.corrupt
                ))
            }
        }
        StoreAction::Compact | StoreAction::Gc => {
            // `gc` keeps only the current key-schema generation; plain
            // `compact` keeps every schema.
            let keep = match action {
                StoreAction::Gc => Some(rf_experiments::codec::DIGEST_SCHEMA),
                _ => None,
            };
            let report =
                store.compact(keep).map_err(|e| format!("compaction failed: {e}"))?;
            println!(
                "kept {} record(s); dropped {} superseded, {} stale-schema, {} corrupt; \
                 {} -> {} bytes",
                report.kept,
                report.dropped_superseded,
                report.dropped_stale_schema,
                report.dropped_corrupt,
                report.bytes_before,
                report.bytes_after,
            );
            Ok(())
        }
    }
}

/// The `report` subcommand: compares the latest run-history ledger
/// record against a baseline and scores paper fidelity. With `--check`,
/// returns `Err` (process exit code 1) when the analysis fails.
#[allow(clippy::too_many_arguments)]
fn run_report(
    ledger_path: &str,
    baseline: Option<String>,
    window: usize,
    format: cli::ReportFormat,
    out: Option<String>,
    prom: Option<String>,
    check: bool,
    max_regress_pct: f64,
    band_scale: f64,
    fidelity: rf_obs::trend::FidelityMode,
    profile_drift: rf_obs::trend::FidelityMode,
) -> Result<(), String> {
    let records = rf_obs::ledger::read_ledger(std::path::Path::new(ledger_path))
        .map_err(|e| format!("cannot read ledger: {e}"))?;
    let opts = rf_obs::trend::Options {
        baseline,
        window,
        max_regress_pct,
        band_scale,
        fidelity,
        profile_drift,
        ..rf_obs::trend::Options::default()
    };
    let analysis = rf_obs::trend::analyze(&records, &opts)?;
    let rendered = match format {
        cli::ReportFormat::Text => rf_obs::trend::render_text(&analysis),
        cli::ReportFormat::Markdown => rf_obs::trend::render_markdown(&analysis),
    };
    match out {
        Some(path) => {
            std::fs::write(&path, &rendered)
                .map_err(|e| format!("cannot write {path:?}: {e}"))?;
            eprintln!("report -> {path} ({} bytes)", rendered.len());
        }
        None => print!("{rendered}"),
    }
    if let Some(path) = prom {
        let exposition = rf_obs::trend::render_prometheus(&analysis);
        std::fs::write(&path, &exposition)
            .map_err(|e| format!("cannot write {path:?}: {e}"))?;
        eprintln!("prometheus exposition -> {path} ({} bytes)", exposition.len());
    }
    if check && !analysis.passed() {
        return Err(format!(
            "report --check failed: {} finding(s); see report above",
            analysis.failures.len()
        ));
    }
    Ok(())
}

fn print_stats(name: &str, stats: &SimStats) {
    println!("benchmark/trace      : {name}");
    println!("committed            : {}", stats.committed);
    println!("cycles               : {}", stats.cycles);
    println!("issue IPC            : {:.2}", stats.issue_ipc());
    println!("commit IPC           : {:.2}", stats.commit_ipc());
    println!("load miss rate       : {:.1}%", 100.0 * stats.cache.load_miss_rate());
    println!("cbr mispredict rate  : {:.1}%", 100.0 * stats.mispredict_rate());
    println!("squashed             : {}", stats.squashed);
    println!("no-free-reg cycles   : {:.1}%", 100.0 * stats.no_free_reg_fraction());
    for (class, label) in [(RegClass::Int, "int"), (RegClass::Fp, "fp ")] {
        let p90 = stats.live_percentile(class, LiveModel::Precise, 90.0);
        let i90 = stats.live_percentile(class, LiveModel::Imprecise, 90.0);
        println!("{label} live regs (90th)  : precise {p90}, imprecise {i90}");
    }
}

#[cfg(test)]
mod top_tests {
    use super::*;
    use rf_obs::live::{CounterSnapshot, Snap, SuiteView, WorkerSample};

    fn plan() -> Vec<String> {
        vec!["fig3".into(), "fig4".into(), "mystery".into()]
    }

    fn medians() -> Vec<(String, f64)> {
        vec![("fig3".into(), 1.0), ("fig4".into(), 3.0)]
    }

    fn suite(done: u64, current: Option<&str>, current_elapsed_s: f64) -> SuiteView {
        SuiteView { total: 3, done, current: current.map(str::to_owned), current_elapsed_s }
    }

    #[test]
    fn eta_charges_remaining_harnesses_and_the_partial_current_one() {
        // Nothing started: 1.0 + 3.0 + 2.0 (unknown name charged the
        // median of the known medians).
        assert_eq!(top_eta(&plan(), &medians(), &suite(0, None, 0.0)), Some(6.0));
        // fig4 one second in: (3 - 1) + 2.
        assert_eq!(top_eta(&plan(), &medians(), &suite(1, Some("fig4"), 1.0)), Some(4.0));
        // Overrun current harness clamps at zero, never negative.
        assert_eq!(top_eta(&plan(), &medians(), &suite(1, Some("fig4"), 99.0)), Some(2.0));
        assert_eq!(top_eta(&plan(), &medians(), &suite(3, None, 0.0)), Some(0.0));
        assert_eq!(top_eta(&[], &medians(), &suite(0, None, 0.0)), None);
        assert_eq!(top_eta(&plan(), &[], &suite(0, None, 0.0)), None);
    }

    #[test]
    fn bar_fills_proportionally_and_clamps() {
        assert_eq!(bar(0.5, 4), "[##--]");
        assert_eq!(bar(-1.0, 4), "[----]");
        assert_eq!(bar(7.0, 4), "[####]");
    }

    #[test]
    fn human_count_picks_sensible_units() {
        assert_eq!(human_count(12.0), "12");
        assert_eq!(human_count(1_500.0), "1.5k");
        assert_eq!(human_count(2_000_000.0), "2.00M");
        assert_eq!(human_count(3_500_000_000.0), "3.50G");
    }

    fn snap(seq: u64, elapsed_s: f64, committed: u64, busy_ns: u64, is_final: bool) -> Snap {
        Snap {
            seq,
            elapsed_s,
            is_final,
            counters: CounterSnapshot {
                sims_started: 10,
                sims_completed: 7,
                sims_failed: 1,
                sims_cached: 2,
                sims_pruned: 3,
                instructions_committed: committed,
                cycles: committed / 2,
                cycles_skipped: 0,
                wakeup_events: 0,
                cache_hits: 2,
                cache_misses: 6,
                cache_evictions: 1,
                store_hits: 0,
                store_misses: 0,
                store_writes: 0,
            },
            workers: vec![WorkerSample { id: 0, busy_ns, sims: 7 }],
            suite: suite(1, Some("fig4"), 0.5),
            digest: is_final.then(|| "feedbeef".to_owned()),
        }
    }

    #[test]
    fn frame_rates_and_utilization_come_from_the_last_window() {
        let header = rf_obs::live::StreamHeader {
            schema: rf_obs::live::SNAPSHOT_SCHEMA_VERSION,
            interval_ms: 250,
            commits: 200_000,
            jobs: 2,
        };
        // Window: 1s wall, 2M commits, worker 0 busy 0.5s -> 50%.
        let snaps =
            vec![snap(1, 1.0, 1_000_000, 0, false), snap(2, 2.0, 3_000_000, 500_000_000, false)];
        let frame = render_top_frame("live.jsonl", Some(&header), &snaps, &plan(), &medians());
        assert!(frame.contains("commits/s 2.00M"), "{frame}");
        assert!(frame.contains("w0 [##########----------]  50.0%  7 sims"), "{frame}");
        assert!(frame.contains("1/3 harnesses   current fig4 (0.5s)"), "{frame}");
        // fig4 charged (3 - 0.5) + mystery charged 2.
        assert!(frame.contains("eta 4.5s"), "{frame}");
        assert!(frame.contains("7 done / 1 failed / 2 cached / 3 pruned"), "{frame}");
        assert!(frame.contains("(25.0% hit rate)"), "{frame}");
        assert!(!frame.contains("FINISHED"));

        let fin = vec![snaps[1].clone(), snap(3, 3.0, 3_000_000, 500_000_000, true)];
        let final_frame =
            render_top_frame("live.jsonl", Some(&header), &fin, &plan(), &medians());
        assert!(final_frame.contains("FINISHED"), "{final_frame}");
    }

    #[test]
    fn frame_without_snapshots_says_it_is_waiting() {
        let frame = render_top_frame("live.jsonl", None, &[], &[], &[]);
        assert!(frame.contains("rfstudy top — live.jsonl"));
        assert!(frame.contains("waiting for first snapshot"), "{frame}");
    }

    #[test]
    fn latest_plan_reads_harness_order_from_the_newest_record() {
        let records = vec![
            rf_obs::json::parse(r#"{"harnesses":[{"name":"old"}]}"#).unwrap(),
            rf_obs::json::parse(r#"{"harnesses":[{"name":"fig3"},{"name":"fig4"}]}"#).unwrap(),
        ];
        assert_eq!(latest_plan(&records), vec!["fig3".to_owned(), "fig4".to_owned()]);
        assert!(latest_plan(&[]).is_empty());
    }
}
