//! The `rfstudy` command-line simulator.
//!
//! Run `rfstudy help` for usage. Commands: `list`, `run`, `record`,
//! `replay`, `check`, `profile`, `dump`, `dataflow`, `report`, `timing`.
//!
//! Exit status: 0 on success, 1 on a runtime failure (simulation error,
//! sanitizer violation, failed gate, exceeded deadline), 2 on a usage
//! error (unknown command/option or malformed value).

mod cli;

use cli::{Command, MachineOpts, TraceFormat};
use rf_check::{CheckParams, Sanitizer};
use rf_core::dataflow::analyze;
use rf_core::{CancelToken, Cancelled, ExceptionModel, LiveModel, Pipeline, SimStats};
use rf_obs::Recorder;
use rf_isa::RegClass;
use rf_timing::{RegFileGeometry, TimingModel};
use rf_workload::{spec92, trace_io, TraceGenerator, WrongPathGenerator};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match cli::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", cli::USAGE);
            return ExitCode::from(2);
        }
    };
    match dispatch(cmd) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Help => {
            println!("{}", cli::USAGE);
            Ok(())
        }
        Command::List => {
            println!("{:<10} {:>6} {:>6} {:>8}", "benchmark", "fp?", "loops", "body");
            for p in spec92::all() {
                println!(
                    "{:<10} {:>6} {:>6} {:>8}",
                    p.name,
                    if p.is_fp_intensive() { "fp" } else { "int" },
                    p.loops.n_loops,
                    p.loops.body_len
                );
            }
            Ok(())
        }
        Command::Run { bench, commits, deadline_secs, machine } => {
            let profile =
                spec92::by_name(&bench).ok_or_else(|| format!("unknown benchmark {bench:?}"))?;
            let mut trace = TraceGenerator::new(&profile, machine.seed);
            // The watchdog thread fires the token after the wall budget;
            // the pipeline polls it cooperatively and discards its partial
            // state. The thread is detached — it holds only a token clone,
            // and the process outlives any still-pending sleep by at most
            // the time it takes `main` to return.
            let cancel = deadline_secs.map(|secs| {
                let token = CancelToken::new();
                let armed = token.clone();
                std::thread::spawn(move || {
                    std::thread::sleep(std::time::Duration::from_secs_f64(secs));
                    armed.cancel();
                });
                token
            });
            let deadline_err = |c: Cancelled| {
                format!(
                    "deadline of {}s exceeded at cycle {} (partial statistics discarded)",
                    deadline_secs.unwrap_or_default(),
                    c.at_cycle
                )
            };
            if rf_check::sanitize_enabled() {
                let sanitizer = Sanitizer::new(machine.regs, machine.exceptions);
                let mut pipeline = Pipeline::with_observer(machine.to_config(), sanitizer);
                if let Some(token) = cancel {
                    pipeline = pipeline.with_cancel(token);
                }
                let (stats, sanitizer) =
                    pipeline.try_run_observed(&mut trace, commits).map_err(deadline_err)?;
                print_stats(&bench, &stats);
                println!("{}", sanitizer.report());
                if !sanitizer.is_clean() {
                    return Err(format!(
                        "sanitizer detected {} invariant violation(s)",
                        sanitizer.total_violations()
                    ));
                }
            } else {
                let mut pipeline = Pipeline::new(machine.to_config());
                if let Some(token) = cancel {
                    pipeline = pipeline.with_cancel(token);
                }
                let stats = pipeline.try_run(&mut trace, commits).map_err(deadline_err)?;
                print_stats(&bench, &stats);
            }
            Ok(())
        }
        Command::Trace { bench, commits, format, window, out, machine } => {
            let profile =
                spec92::by_name(&bench).ok_or_else(|| format!("unknown benchmark {bench:?}"))?;
            let mut trace = TraceGenerator::new(&profile, machine.seed);
            let recorder = match window {
                Some(w) => Recorder::with_window(w),
                None => Recorder::unbounded(),
            };
            let (stats, mut recorder) = Pipeline::with_observer(machine.to_config(), recorder)
                .run_observed(&mut trace, commits);
            recorder.seal();
            let rendered = match format {
                TraceFormat::Chrome => rf_obs::chrome_trace(&recorder),
                TraceFormat::Text => rf_obs::text_timeline(&recorder),
                TraceFormat::Summary => rf_obs::summary(&recorder, &stats),
            };
            match out {
                Some(path) => {
                    std::fs::write(&path, &rendered)
                        .map_err(|e| format!("cannot write {path:?}: {e}"))?;
                    eprintln!(
                        "traced {} commits of {bench} over {} cycles -> {path} ({} bytes)",
                        stats.committed,
                        stats.cycles,
                        rendered.len()
                    );
                }
                None => print!("{rendered}"),
            }
            Ok(())
        }
        Command::Record { bench, out, count, seed } => {
            let profile =
                spec92::by_name(&bench).ok_or_else(|| format!("unknown benchmark {bench:?}"))?;
            let mut file = std::fs::File::create(&out)
                .map_err(|e| format!("cannot create {out:?}: {e}"))?;
            let gen = TraceGenerator::new(&profile, seed);
            let n = trace_io::write_trace(&mut file, gen.take(count as usize))
                .map_err(|e| format!("write failed: {e}"))?;
            println!("recorded {n} instructions of {bench} to {out}");
            Ok(())
        }
        Command::Replay { trace, commits, machine } => {
            let mut file =
                std::fs::File::open(&trace).map_err(|e| format!("cannot open {trace:?}: {e}"))?;
            let insts =
                trace_io::read_trace(&mut file).map_err(|e| format!("bad trace: {e}"))?;
            let n = insts.len() as u64;
            let target = if commits == 0 { n } else { commits.min(n) };
            run_replay(&trace, insts, target, &machine)
        }
        Command::Check { bench, width, exceptions, regs, commits, seed } => {
            run_check(bench, width, exceptions, regs, commits, seed)
        }
        Command::Profile { bench, width, exceptions, regs, commits, seed, format, top, out } => {
            run_profile(bench, width, exceptions, regs, commits, seed, format, top, out)
        }
        Command::Report {
            ledger,
            baseline,
            window,
            format,
            out,
            prom,
            check,
            max_regress_pct,
            band_scale,
            fidelity,
            profile_drift,
        } => run_report(
            &ledger,
            baseline,
            window,
            format,
            out,
            prom,
            check,
            max_regress_pct,
            band_scale,
            fidelity,
            profile_drift,
        ),
        Command::Dataflow { bench, window, count } => {
            let profile =
                spec92::by_name(&bench).ok_or_else(|| format!("unknown benchmark {bench:?}"))?;
            let gen = TraceGenerator::new(&profile, 1);
            let limit = analyze(gen.take(count as usize), window);
            println!("benchmark      : {bench}");
            println!("instructions   : {}", limit.instructions);
            println!("critical path  : {} cycles", limit.critical_path);
            match window {
                Some(w) => println!("dataflow IPC   : {:.2} (window {w})", limit.ipc()),
                None => println!("dataflow IPC   : {:.2} (unbounded)", limit.ipc()),
            }
            Ok(())
        }
        Command::Dump { trace, count } => {
            let mut file =
                std::fs::File::open(&trace).map_err(|e| format!("cannot open {trace:?}: {e}"))?;
            let insts =
                trace_io::read_trace(&mut file).map_err(|e| format!("bad trace: {e}"))?;
            let limit = if count == 0 { insts.len() } else { count as usize };
            for inst in insts.iter().take(limit) {
                println!("{:#010x}: {inst}", inst.pc());
            }
            Ok(())
        }
        Command::Timing { width } => {
            let model = TimingModel::cmos_05um();
            println!("{width}-way issue register-file timing (0.5um CMOS)");
            println!("{:>6} {:>14} {:>14}", "regs", "int cycle (ns)", "fp cycle (ns)");
            for regs in [32usize, 48, 64, 80, 96, 128, 160, 256] {
                println!(
                    "{regs:>6} {:>14.3} {:>14.3}",
                    model.cycle_time_ns(&RegFileGeometry::int_for_width(width, regs)),
                    model.cycle_time_ns(&RegFileGeometry::fp_for_width(width, regs)),
                );
            }
            Ok(())
        }
    }
}

fn run_replay(
    name: &str,
    insts: Vec<rf_isa::Instruction>,
    commits: u64,
    machine: &MachineOpts,
) -> Result<(), String> {
    // Wrong-path instructions come from a generic profile (the trace file
    // does not know which benchmark it came from).
    let mut wp = WrongPathGenerator::new(&spec92::compress(), machine.seed);
    let mut trace = insts.into_iter();
    if rf_check::sanitize_enabled() {
        let sanitizer = Sanitizer::new(machine.regs, machine.exceptions);
        let (stats, sanitizer) = Pipeline::with_observer(machine.to_config(), sanitizer)
            .run_with_observed(&mut trace, &mut wp, commits);
        print_stats(name, &stats);
        println!("{}", sanitizer.report());
        if !sanitizer.is_clean() {
            return Err(format!(
                "sanitizer detected {} invariant violation(s)",
                sanitizer.total_violations()
            ));
        }
    } else {
        let stats = Pipeline::new(machine.to_config()).run_with(&mut trace, &mut wp, commits);
        print_stats(name, &stats);
    }
    Ok(())
}

/// The `check` subcommand: cross-validates the simulator against the
/// static oracle over the requested configuration matrix (the full
/// default matrix when no dimension is pinned).
fn run_check(
    bench: Option<String>,
    width: Option<usize>,
    exceptions: Option<ExceptionModel>,
    regs: Option<usize>,
    commits: Option<u64>,
    seed: u64,
) -> Result<(), String> {
    let commits = commits
        .or_else(|| std::env::var("RF_COMMITS").ok().and_then(|v| v.parse().ok()))
        .unwrap_or(10_000);
    let benches: Vec<String> = match bench {
        Some(b) => {
            spec92::by_name(&b).ok_or_else(|| format!("unknown benchmark {b:?}"))?;
            vec![b]
        }
        None => spec92::all().into_iter().map(|p| p.name).collect(),
    };
    let widths = width.map_or_else(|| vec![4, 8], |w| vec![w]);
    let models = exceptions
        .map_or_else(|| vec![ExceptionModel::Precise, ExceptionModel::Imprecise], |m| vec![m]);
    let reg_sizes = regs.map_or_else(|| vec![2048, 64], |r| vec![r]);

    let mut failures = 0u64;
    let mut runs = 0u64;
    for b in &benches {
        for &w in &widths {
            for &m in &models {
                for &r in &reg_sizes {
                    let params = CheckParams {
                        bench: b.clone(),
                        width: w,
                        exceptions: m,
                        regs: r,
                        commits,
                        seed,
                    };
                    let report = rf_check::cross_validate(&params)?;
                    runs += 1;
                    if report.passed() {
                        // One summary line per clean configuration.
                        print!("{}", report.render().lines().next().unwrap_or(""));
                        println!();
                    } else {
                        failures += 1;
                        print!("{}", report.render());
                    }
                }
            }
        }
    }
    println!("check: {runs} configurations, {failures} failed");
    if failures > 0 {
        Err(format!("{failures} configuration(s) failed cross-validation"))
    } else {
        Ok(())
    }
}

/// The `profile` subcommand: forces the rf-prof self-profiler on, runs
/// the requested slice of the check matrix through a single-worker pool
/// (serial execution keeps wall time and attributed span time on the
/// same clock, so the coverage line below is meaningful), and renders
/// where the time went.
#[allow(clippy::too_many_arguments)]
fn run_profile(
    bench: Option<String>,
    width: Option<usize>,
    exceptions: Option<ExceptionModel>,
    regs: Option<usize>,
    commits: Option<u64>,
    seed: u64,
    format: cli::ProfileFormat,
    top: usize,
    out: Option<String>,
) -> Result<(), String> {
    use rf_experiments::runner::{RunCache, RunSpec, SimPool};
    let commits = commits
        .or_else(|| std::env::var("RF_COMMITS").ok().and_then(|v| v.parse().ok()))
        .unwrap_or(10_000);
    let benches: Vec<String> = match bench {
        Some(b) => {
            spec92::by_name(&b).ok_or_else(|| format!("unknown benchmark {b:?}"))?;
            vec![b]
        }
        None => spec92::all().into_iter().map(|p| p.name).collect(),
    };
    let widths = width.map_or_else(|| vec![4, 8], |w| vec![w]);
    let models = exceptions
        .map_or_else(|| vec![ExceptionModel::Precise, ExceptionModel::Imprecise], |m| vec![m]);
    let reg_sizes = regs.map_or_else(|| vec![2048, 64], |r| vec![r]);

    let mut specs = Vec::new();
    for b in &benches {
        for &w in &widths {
            for &m in &models {
                for &r in &reg_sizes {
                    let mut spec =
                        RunSpec::baseline(b, w).regs(r).exceptions(m).commits(commits);
                    spec.seed = seed;
                    specs.push(spec);
                }
            }
        }
    }

    rf_prof::set_enabled(true);
    let wall = std::time::Instant::now();
    // A fresh disabled cache so every configuration actually simulates:
    // cache hits would attribute near-zero time and skew the profile.
    let results = SimPool::new(1).try_run_many_cached(&specs, &RunCache::disabled());
    let wall_ns = wall.elapsed().as_nanos() as u64;
    let root = rf_prof::collect();
    rf_prof::set_enabled(false);
    if let Some(err) = results.into_iter().find_map(Result::err) {
        return Err(format!("profiled batch failed: {err}"));
    }
    let root = root.ok_or("profiler recorded no spans")?;

    let attributed = root.attributed_ns();
    let coverage_pct = 100.0 * attributed as f64 / wall_ns.max(1) as f64;
    let rendered = match format {
        cli::ProfileFormat::Flame => rf_obs::profile::collapsed(&root),
        cli::ProfileFormat::Json => format!("{}\n", rf_obs::profile::to_value(&root)),
        cli::ProfileFormat::Text => format!(
            "{}attributed {:.1}% of {:.3}s wall time ({} configurations, {} commits each)\n",
            rf_obs::profile::text_table(&root, top),
            coverage_pct,
            wall_ns as f64 / 1e9,
            specs.len(),
            commits,
        ),
    };
    match out {
        Some(path) => {
            std::fs::write(&path, &rendered)
                .map_err(|e| format!("cannot write {path:?}: {e}"))?;
            eprintln!(
                "profile -> {path} ({} bytes, {:.1}% of wall time attributed)",
                rendered.len(),
                coverage_pct
            );
        }
        None => print!("{rendered}"),
    }
    Ok(())
}

/// The `report` subcommand: compares the latest run-history ledger
/// record against a baseline and scores paper fidelity. With `--check`,
/// returns `Err` (process exit code 1) when the analysis fails.
#[allow(clippy::too_many_arguments)]
fn run_report(
    ledger_path: &str,
    baseline: Option<String>,
    window: usize,
    format: cli::ReportFormat,
    out: Option<String>,
    prom: Option<String>,
    check: bool,
    max_regress_pct: f64,
    band_scale: f64,
    fidelity: rf_obs::trend::FidelityMode,
    profile_drift: rf_obs::trend::FidelityMode,
) -> Result<(), String> {
    let records = rf_obs::ledger::read_ledger(std::path::Path::new(ledger_path))
        .map_err(|e| format!("cannot read ledger: {e}"))?;
    let opts = rf_obs::trend::Options {
        baseline,
        window,
        max_regress_pct,
        band_scale,
        fidelity,
        profile_drift,
        ..rf_obs::trend::Options::default()
    };
    let analysis = rf_obs::trend::analyze(&records, &opts)?;
    let rendered = match format {
        cli::ReportFormat::Text => rf_obs::trend::render_text(&analysis),
        cli::ReportFormat::Markdown => rf_obs::trend::render_markdown(&analysis),
    };
    match out {
        Some(path) => {
            std::fs::write(&path, &rendered)
                .map_err(|e| format!("cannot write {path:?}: {e}"))?;
            eprintln!("report -> {path} ({} bytes)", rendered.len());
        }
        None => print!("{rendered}"),
    }
    if let Some(path) = prom {
        let exposition = rf_obs::trend::render_prometheus(&analysis);
        std::fs::write(&path, &exposition)
            .map_err(|e| format!("cannot write {path:?}: {e}"))?;
        eprintln!("prometheus exposition -> {path} ({} bytes)", exposition.len());
    }
    if check && !analysis.passed() {
        return Err(format!(
            "report --check failed: {} finding(s); see report above",
            analysis.failures.len()
        ));
    }
    Ok(())
}

fn print_stats(name: &str, stats: &SimStats) {
    println!("benchmark/trace      : {name}");
    println!("committed            : {}", stats.committed);
    println!("cycles               : {}", stats.cycles);
    println!("issue IPC            : {:.2}", stats.issue_ipc());
    println!("commit IPC           : {:.2}", stats.commit_ipc());
    println!("load miss rate       : {:.1}%", 100.0 * stats.cache.load_miss_rate());
    println!("cbr mispredict rate  : {:.1}%", 100.0 * stats.mispredict_rate());
    println!("squashed             : {}", stats.squashed);
    println!("no-free-reg cycles   : {:.1}%", 100.0 * stats.no_free_reg_fraction());
    for (class, label) in [(RegClass::Int, "int"), (RegClass::Fp, "fp ")] {
        let p90 = stats.live_percentile(class, LiveModel::Precise, 90.0);
        let i90 = stats.live_percentile(class, LiveModel::Imprecise, 90.0);
        println!("{label} live regs (90th)  : precise {p90}, imprecise {i90}");
    }
}
