//! Argument parsing for the `rfstudy` command-line simulator.
//!
//! Hand-rolled (no dependency) subcommand parser. See `main.rs` for the
//! command implementations and `rfstudy help` for usage.

use rf_bpred::PredictorKind;
use rf_core::{ExceptionModel, MachineConfig, SchedPolicy};
use rf_mem::CacheOrg;

/// Machine options shared by `run` and `replay`.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineOpts {
    /// Issue width.
    pub width: usize,
    /// Dispatch-queue entries (default `8 x width`).
    pub dq: Option<usize>,
    /// Physical registers per class.
    pub regs: usize,
    /// Exception model.
    pub exceptions: ExceptionModel,
    /// Cache organisation.
    pub cache: CacheOrg,
    /// Scheduler policy.
    pub sched: SchedPolicy,
    /// Split dispatch queues.
    pub split_queues: bool,
    /// Branch predictor kind.
    pub predictor: PredictorKind,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for MachineOpts {
    fn default() -> Self {
        Self {
            width: 4,
            dq: None,
            regs: 2048,
            exceptions: ExceptionModel::Precise,
            cache: CacheOrg::LockupFree,
            sched: SchedPolicy::OldestFirst,
            split_queues: false,
            predictor: PredictorKind::Combining,
            seed: 1,
        }
    }
}

impl MachineOpts {
    /// Builds the machine configuration.
    pub fn to_config(&self) -> MachineConfig {
        let mut c = MachineConfig::new(self.width)
            .dispatch_queue(self.dq.unwrap_or(self.width * 8))
            .physical_regs(self.regs)
            .exceptions(self.exceptions)
            .cache(self.cache)
            .scheduling(self.sched)
            .predictor(self.predictor)
            .seed(self.seed);
        if self.split_queues {
            c = c.split_dispatch_queues(true);
        }
        c
    }
}

/// Output format of the `trace` subcommand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// Chrome trace-event JSON (Perfetto / `chrome://tracing`).
    Chrome,
    /// Plain-text per-instruction cycle timeline.
    Text,
    /// Reconciled stall/latency summary.
    Summary,
}

impl TraceFormat {
    /// Parses a `--format` value.
    pub fn parse(v: &str) -> Result<Self, String> {
        match v {
            "chrome" => Ok(TraceFormat::Chrome),
            "text" => Ok(TraceFormat::Text),
            "summary" => Ok(TraceFormat::Summary),
            other => Err(format!(
                "unknown trace format {other:?} (expected chrome, text, or summary)"
            )),
        }
    }
}

/// Output format of the `report` subcommand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportFormat {
    /// Plain-text tables.
    Text,
    /// Markdown (the CI artifact format).
    Markdown,
}

impl ReportFormat {
    /// Parses a `--format` value.
    pub fn parse(v: &str) -> Result<Self, String> {
        match v {
            "text" => Ok(ReportFormat::Text),
            "markdown" => Ok(ReportFormat::Markdown),
            other => Err(format!(
                "unknown report format {other:?} (expected text or markdown)"
            )),
        }
    }
}

/// Output format of the `profile` subcommand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileFormat {
    /// Collapsed-stack text (flamegraph.pl / inferno / speedscope input).
    Flame,
    /// The ledger's JSON profile-tree encoding.
    Json,
    /// Aligned text table of the hottest spans.
    Text,
}

impl ProfileFormat {
    /// Parses a `--format` value.
    pub fn parse(v: &str) -> Result<Self, String> {
        match v {
            "flame" => Ok(ProfileFormat::Flame),
            "json" => Ok(ProfileFormat::Json),
            "text" => Ok(ProfileFormat::Text),
            other => Err(format!(
                "unknown profile format {other:?} (expected flame, json, or text)"
            )),
        }
    }
}

/// Output format of the `model` subcommand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelFormat {
    /// Aligned text table, one configuration per line.
    Text,
    /// JSON array of per-configuration estimate objects.
    Json,
}

impl ModelFormat {
    /// Parses a `--format` value.
    pub fn parse(v: &str) -> Result<Self, String> {
        match v {
            "text" => Ok(ModelFormat::Text),
            "json" => Ok(ModelFormat::Json),
            other => Err(format!("unknown model format {other:?} (expected text or json)")),
        }
    }
}

/// The check-style configuration matrix pinning shared by `check`,
/// `profile`, and `model`: without options the full default matrix
/// (all nine benchmarks × widths 4 and 8 × precise and imprecise
/// exceptions × 2048 and 64 registers); each option pins one
/// dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixPins {
    /// Restrict to one benchmark (`None` = all nine).
    pub bench: Option<String>,
    /// Restrict to one issue width (`None` = 4 and 8).
    pub width: Option<usize>,
    /// Restrict to one exception model (`None` = precise and
    /// imprecise).
    pub exceptions: Option<ExceptionModel>,
    /// Restrict to one register-file size (`None` = 2048 and 64).
    pub regs: Option<usize>,
    /// Commit budget per configuration (`None` = `RF_COMMITS` env or
    /// 10000).
    pub commits: Option<u64>,
    /// Workload seed.
    pub seed: u64,
}

impl MatrixPins {
    /// Expands the pins into the cross-product of configurations,
    /// validating the benchmark name and resolving the commit default
    /// (`RF_COMMITS` environment variable, else 10000).
    pub fn expand(&self) -> Result<Vec<rf_check::CheckParams>, String> {
        let commits = self
            .commits
            .or_else(|| std::env::var("RF_COMMITS").ok().and_then(|v| v.parse().ok()))
            .unwrap_or(10_000);
        let benches: Vec<String> = match &self.bench {
            Some(b) => {
                rf_workload::spec92::by_name(b)
                    .ok_or_else(|| format!("unknown benchmark {b:?}"))?;
                vec![b.clone()]
            }
            None => rf_workload::spec92::all().into_iter().map(|p| p.name).collect(),
        };
        let widths = self.width.map_or_else(|| vec![4, 8], |w| vec![w]);
        let models = self.exceptions.map_or_else(
            || vec![ExceptionModel::Precise, ExceptionModel::Imprecise],
            |m| vec![m],
        );
        let reg_sizes = self.regs.map_or_else(|| vec![2048, 64], |r| vec![r]);
        let mut params = Vec::new();
        for b in &benches {
            for &w in &widths {
                for &m in &models {
                    for &r in &reg_sizes {
                        params.push(rf_check::CheckParams {
                            bench: b.clone(),
                            width: w,
                            exceptions: m,
                            regs: r,
                            commits,
                            seed: self.seed,
                        });
                    }
                }
            }
        }
        Ok(params)
    }
}

/// Maintenance action of the `store` subcommand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreAction {
    /// Print snapshot statistics (records, segments, schema mix).
    Stats,
    /// Re-read and checksum-verify every live record; exit nonzero on
    /// corruption.
    Verify,
    /// Rewrite the store down to its latest record per digest.
    Compact,
    /// Compact and additionally drop records written under a stale
    /// key-schema version.
    Gc,
}

impl StoreAction {
    /// Parses the positional ACTION argument.
    pub fn parse(v: &str) -> Result<Self, String> {
        match v {
            "stats" => Ok(StoreAction::Stats),
            "verify" => Ok(StoreAction::Verify),
            "compact" => Ok(StoreAction::Compact),
            "gc" => Ok(StoreAction::Gc),
            other => Err(format!(
                "unknown store action {other:?} (expected stats, verify, compact, or gc)"
            )),
        }
    }
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// List the available benchmark profiles.
    List,
    /// Simulate a benchmark with the pipeline observer attached and
    /// export the recorded trace.
    Trace {
        /// Benchmark name.
        bench: String,
        /// Commit budget.
        commits: u64,
        /// Export format.
        format: TraceFormat,
        /// Retained-detail window in cycles (`None` = whole run).
        window: Option<u64>,
        /// Output path (`None` = stdout).
        out: Option<String>,
        /// Machine options.
        machine: MachineOpts,
    },
    /// Simulate a benchmark.
    Run {
        /// Benchmark name.
        bench: String,
        /// Commit budget.
        commits: u64,
        /// Wall-clock budget in seconds (`None` = unbounded). An
        /// overrunning simulation is cancelled cooperatively and the
        /// process exits 1.
        deadline_secs: Option<f64>,
        /// Machine options.
        machine: MachineOpts,
    },
    /// Record a trace file.
    Record {
        /// Benchmark name.
        bench: String,
        /// Output path.
        out: String,
        /// Instructions to record.
        count: u64,
        /// Generator seed.
        seed: u64,
    },
    /// Replay a trace file through the pipeline.
    Replay {
        /// Trace path.
        trace: String,
        /// Commit budget (0 = drain the whole trace).
        commits: u64,
        /// Machine options.
        machine: MachineOpts,
    },
    /// Cross-validate the simulator against the static dataflow oracle
    /// with the invariant sanitizer attached.
    Check {
        /// Configuration matrix pinning.
        pins: MatrixPins,
        /// Wall-clock budget in seconds for the whole matrix (`None` =
        /// unbounded); an overrunning run is cancelled cooperatively
        /// and the process exits 1.
        deadline_secs: Option<f64>,
    },
    /// Evaluate the static analytic model over the configuration
    /// matrix, or cross-validate it against the simulator (`--check`).
    Model {
        /// Configuration matrix pinning.
        pins: MatrixPins,
        /// Run model-vs-simulator cross-validation and gate on the
        /// error bands.
        check: bool,
        /// Output format (estimates only; `--check` always renders
        /// check-style text).
        format: ModelFormat,
        /// Wall-clock budget in seconds for the `--check` simulation
        /// batch (`None` = unbounded); overrunning configurations fail
        /// and the process exits 1. Ignored without `--check` (the
        /// model alone takes microseconds).
        deadline_secs: Option<f64>,
    },
    /// Dataflow ILP-limit analysis.
    Dataflow {
        /// Benchmark name.
        bench: String,
        /// Optional sliding window.
        window: Option<usize>,
        /// Instructions to analyse.
        count: u64,
    },
    /// Compare the latest run-history ledger record against a baseline
    /// and score paper fidelity.
    Report {
        /// Ledger path (default `results/history/suite.jsonl`).
        ledger: String,
        /// Baseline git-revision prefix (`None` = rolling median of
        /// prior comparable runs).
        baseline: Option<String>,
        /// Rolling-window size for the median baseline.
        window: usize,
        /// Report format.
        format: ReportFormat,
        /// Write the rendered report here instead of stdout.
        out: Option<String>,
        /// Also write a Prometheus text-format exposition here.
        prom: Option<String>,
        /// Exit nonzero on perf regression or fidelity drift (CI gate).
        check: bool,
        /// Perf-regression noise floor, percent.
        max_regress_pct: f64,
        /// Fidelity band multiplier (widen for smoke scales).
        band_scale: f64,
        /// Fidelity gating mode.
        fidelity: rf_obs::trend::FidelityMode,
        /// Profile-drift handling mode.
        profile_drift: rf_obs::trend::FidelityMode,
    },
    /// Run an instrumented batch with the rf-prof self-profiler forced
    /// on and render where the wall time went.
    Profile {
        /// Configuration matrix pinning.
        pins: MatrixPins,
        /// Render format.
        format: ProfileFormat,
        /// Rows in the text table.
        top: usize,
        /// Output path (`None` = stdout).
        out: Option<String>,
        /// Wall-clock budget in seconds for the instrumented batch
        /// (`None` = unbounded); an overrunning run is cancelled
        /// cooperatively and the process exits 1.
        deadline_secs: Option<f64>,
    },
    /// Attach to a running (or finished) telemetry stream and render a
    /// live terminal view of the suite.
    Top {
        /// Telemetry stream path (default
        /// `results/telemetry/live.jsonl`).
        file: String,
        /// Run-history ledger path used for the ETA medians (default
        /// `results/history/suite.jsonl`).
        ledger: String,
        /// Refresh period in milliseconds.
        interval_ms: u64,
        /// Render one frame and exit instead of following the stream.
        once: bool,
        /// Spawn the suite binary with RF_TELEMETRY=1 and attach to it.
        spawn: bool,
    },
    /// Inspect or maintain the durable content-addressed run store.
    Store {
        /// What to do.
        action: StoreAction,
        /// Store directory (`None` = `RF_STORE_DIR` or
        /// `results/store`).
        dir: Option<String>,
    },
    /// Register-file timing table.
    Timing {
        /// Issue width.
        width: usize,
    },
    /// Dump a binary trace as text.
    Dump {
        /// Trace path.
        trace: String,
        /// Maximum instructions to print (0 = all).
        count: u64,
    },
    /// Print usage.
    Help,
}

fn parse_machine(opt: &str, value: Option<&str>, m: &mut MachineOpts) -> Result<bool, String> {
    fn need<'a>(opt: &str, v: Option<&'a str>) -> Result<&'a str, String> {
        v.ok_or_else(|| format!("{opt} requires a value"))
    }
    match opt {
        "--width" => m.width = parse_num(opt, need(opt, value)?)?,
        "--dq" => m.dq = Some(parse_num(opt, need(opt, value)?)?),
        "--regs" => m.regs = parse_num(opt, need(opt, value)?)?,
        "--seed" => m.seed = parse_num(opt, need(opt, value)?)?,
        "--exceptions" => {
            m.exceptions = match need(opt, value)? {
                "precise" => ExceptionModel::Precise,
                "imprecise" => ExceptionModel::Imprecise,
                "alpha-hybrid" => ExceptionModel::AlphaHybrid,
                other => return Err(format!("unknown exception model {other:?}")),
            }
        }
        "--cache" => {
            m.cache = match need(opt, value)? {
                "perfect" => CacheOrg::Perfect,
                "lockup" => CacheOrg::Lockup,
                "lockup-free" => CacheOrg::LockupFree,
                other => return Err(format!("unknown cache organisation {other:?}")),
            }
        }
        "--sched" => {
            m.sched = match need(opt, value)? {
                "oldest-first" => SchedPolicy::OldestFirst,
                "youngest-first" => SchedPolicy::YoungestFirst,
                other => return Err(format!("unknown scheduler policy {other:?}")),
            }
        }
        "--predictor" => {
            m.predictor = match need(opt, value)? {
                "bimodal" => PredictorKind::Bimodal,
                "gshare" => PredictorKind::Gshare,
                "combining" => PredictorKind::Combining,
                other => return Err(format!("unknown predictor {other:?}")),
            }
        }
        "--split-queues" => {
            m.split_queues = true;
            return Ok(false); // flag: consumed no value
        }
        _ => return Err(format!("unknown option {opt:?}")),
    }
    Ok(true)
}

fn parse_num<T: std::str::FromStr>(opt: &str, v: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("invalid value {v:?} for {opt}"))
}

/// Parses the pinnable matrix dimensions of `check` / `profile` /
/// `model` out of the collected option pairs.
fn parse_pins(opts: &[(String, Option<String>)]) -> Result<MatrixPins, String> {
    let take = |name: &str| -> Option<String> {
        opts.iter().find(|(o, _)| o == name).and_then(|(_, v)| v.clone())
    };
    Ok(MatrixPins {
        bench: take("--bench"),
        width: take("--width").map(|v| parse_num("--width", &v)).transpose()?,
        exceptions: take("--exceptions")
            .map(|v| match v.as_str() {
                "precise" => Ok(ExceptionModel::Precise),
                "imprecise" => Ok(ExceptionModel::Imprecise),
                "alpha-hybrid" => Ok(ExceptionModel::AlphaHybrid),
                other => Err(format!("unknown exception model {other:?}")),
            })
            .transpose()?,
        regs: take("--regs").map(|v| parse_num("--regs", &v)).transpose()?,
        commits: take("--commits").map(|v| parse_num("--commits", &v)).transpose()?,
        seed: take("--seed").map_or(Ok(12), |v| parse_num("--seed", &v))?,
    })
}

/// Parses a `--deadline-secs` value (shared by `run` and `check`).
fn parse_deadline(opts: &[(String, Option<String>)]) -> Result<Option<f64>, String> {
    opts.iter()
        .find(|(o, _)| o == "--deadline-secs")
        .and_then(|(_, v)| v.clone())
        .map(|v| {
            v.parse::<f64>()
                .ok()
                .filter(|s| s.is_finite() && *s > 0.0)
                .ok_or_else(|| {
                    format!("--deadline-secs {v:?} is not a positive number of seconds")
                })
        })
        .transpose()
}

fn parse_mode(opt: &str, v: &str) -> Result<rf_obs::trend::FidelityMode, String> {
    match v {
        "gate" => Ok(rf_obs::trend::FidelityMode::Gate),
        "warn" => Ok(rf_obs::trend::FidelityMode::Warn),
        "off" => Ok(rf_obs::trend::FidelityMode::Off),
        other => Err(format!("unknown {opt} mode {other:?} (expected gate, warn, or off)")),
    }
}

/// Parses a full argument vector (without the program name).
///
/// # Errors
///
/// Returns a human-readable message for unknown commands, options, or
/// malformed values.
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter().map(String::as_str).peekable();
    let cmd = match it.next() {
        None | Some("help") | Some("--help") | Some("-h") => return Ok(Command::Help),
        Some(c) => c,
    };
    // `store` is the one subcommand with a positional ACTION argument;
    // grab it before the option loop (which rejects bare words).
    let mut store_action: Option<String> = None;
    if cmd == "store" {
        if let Some(a) = it.peek() {
            if !a.starts_with("--") {
                store_action = it.next().map(str::to_owned);
            }
        }
    }
    // Collect option/value pairs.
    let mut opts: Vec<(String, Option<String>)> = Vec::new();
    while let Some(opt) = it.next() {
        if !opt.starts_with("--") {
            return Err(format!("unexpected argument {opt:?}"));
        }
        let value = if matches!(opt, "--split-queues" | "--check" | "--once" | "--spawn") {
            None
        } else {
            it.next().map(str::to_owned)
        };
        opts.push((opt.to_owned(), value));
    }
    let take = |name: &str, opts: &[(String, Option<String>)]| -> Option<String> {
        opts.iter().find(|(o, _)| o == name).and_then(|(_, v)| v.clone())
    };

    match cmd {
        "list" => Ok(Command::List),
        "run" => {
            let bench = take("--bench", &opts).ok_or("run requires --bench")?;
            let commits =
                take("--commits", &opts).map_or(Ok(200_000), |v| parse_num("--commits", &v))?;
            let deadline_secs = parse_deadline(&opts)?;
            let mut machine = MachineOpts::default();
            for (o, v) in &opts {
                if matches!(o.as_str(), "--bench" | "--commits" | "--deadline-secs") {
                    continue;
                }
                parse_machine(o, v.as_deref(), &mut machine)?;
            }
            Ok(Command::Run { bench, commits, deadline_secs, machine })
        }
        "trace" => {
            let bench = take("--bench", &opts).ok_or("trace requires --bench")?;
            let commits =
                take("--commits", &opts).map_or(Ok(10_000), |v| parse_num("--commits", &v))?;
            let format =
                take("--format", &opts).map_or(Ok(TraceFormat::Summary), |v| TraceFormat::parse(&v))?;
            let window =
                take("--window", &opts).map(|v| parse_num("--window", &v)).transpose()?;
            let out = take("--out", &opts);
            let mut machine = MachineOpts::default();
            for (o, v) in &opts {
                if matches!(o.as_str(), "--bench" | "--commits" | "--format" | "--window" | "--out")
                {
                    continue;
                }
                parse_machine(o, v.as_deref(), &mut machine)?;
            }
            Ok(Command::Trace { bench, commits, format, window, out, machine })
        }
        "record" => Ok(Command::Record {
            bench: take("--bench", &opts).ok_or("record requires --bench")?,
            out: take("--out", &opts).ok_or("record requires --out")?,
            count: take("--count", &opts).map_or(Ok(1_000_000), |v| parse_num("--count", &v))?,
            seed: take("--seed", &opts).map_or(Ok(1), |v| parse_num("--seed", &v))?,
        }),
        "replay" => {
            let trace = take("--trace", &opts).ok_or("replay requires --trace")?;
            let commits =
                take("--commits", &opts).map_or(Ok(0), |v| parse_num("--commits", &v))?;
            let mut machine = MachineOpts::default();
            for (o, v) in &opts {
                if o == "--trace" || o == "--commits" {
                    continue;
                }
                parse_machine(o, v.as_deref(), &mut machine)?;
            }
            Ok(Command::Replay { trace, commits, machine })
        }
        "check" => Ok(Command::Check {
            pins: parse_pins(&opts)?,
            deadline_secs: parse_deadline(&opts)?,
        }),
        "model" => Ok(Command::Model {
            pins: parse_pins(&opts)?,
            check: opts.iter().any(|(o, _)| o == "--check"),
            format: take("--format", &opts)
                .map_or(Ok(ModelFormat::Text), |v| ModelFormat::parse(&v))?,
            deadline_secs: parse_deadline(&opts)?,
        }),
        "dataflow" => Ok(Command::Dataflow {
            bench: take("--bench", &opts).ok_or("dataflow requires --bench")?,
            window: take("--window", &opts)
                .map(|v| parse_num("--window", &v))
                .transpose()?,
            count: take("--count", &opts).map_or(Ok(200_000), |v| parse_num("--count", &v))?,
        }),
        "report" => Ok(Command::Report {
            ledger: take("--ledger", &opts)
                .unwrap_or_else(|| rf_obs::ledger::LEDGER_PATH.to_owned()),
            baseline: take("--baseline", &opts),
            window: take("--window", &opts).map_or(Ok(5), |v| parse_num("--window", &v))?,
            format: take("--format", &opts)
                .map_or(Ok(ReportFormat::Text), |v| ReportFormat::parse(&v))?,
            out: take("--out", &opts),
            prom: take("--prom", &opts),
            check: opts.iter().any(|(o, _)| o == "--check"),
            max_regress_pct: take("--max-regress-pct", &opts)
                .map_or(Ok(10.0), |v| parse_num("--max-regress-pct", &v))?,
            band_scale: take("--band-scale", &opts)
                .map_or(Ok(1.0), |v| parse_num("--band-scale", &v))?,
            fidelity: take("--fidelity", &opts)
                .map_or(Ok(rf_obs::trend::FidelityMode::Gate), |v| {
                    parse_mode("--fidelity", &v)
                })?,
            profile_drift: take("--profile-drift", &opts)
                .map_or(Ok(rf_obs::trend::FidelityMode::Warn), |v| {
                    parse_mode("--profile-drift", &v)
                })?,
        }),
        "profile" => Ok(Command::Profile {
            pins: parse_pins(&opts)?,
            format: take("--format", &opts)
                .map_or(Ok(ProfileFormat::Text), |v| ProfileFormat::parse(&v))?,
            top: take("--top", &opts).map_or(Ok(20), |v| parse_num("--top", &v))?,
            out: take("--out", &opts),
            deadline_secs: parse_deadline(&opts)?,
        }),
        "top" => {
            let interval_ms: u64 = take("--interval-ms", &opts)
                .map_or(Ok(500), |v| parse_num("--interval-ms", &v))?;
            if interval_ms == 0 {
                return Err("--interval-ms must be a positive number of milliseconds".into());
            }
            Ok(Command::Top {
                file: take("--file", &opts)
                    .unwrap_or_else(|| rf_obs::live::LIVE_PATH.to_owned()),
                ledger: take("--ledger", &opts)
                    .unwrap_or_else(|| rf_obs::ledger::LEDGER_PATH.to_owned()),
                interval_ms,
                once: opts.iter().any(|(o, _)| o == "--once"),
                spawn: opts.iter().any(|(o, _)| o == "--spawn"),
            })
        }
        "store" => {
            let action = store_action
                .ok_or("store requires an action: stats, verify, compact, or gc")?;
            Ok(Command::Store {
                action: StoreAction::parse(&action)?,
                dir: take("--dir", &opts),
            })
        }
        "timing" => Ok(Command::Timing {
            width: take("--width", &opts).map_or(Ok(4), |v| parse_num("--width", &v))?,
        }),
        "dump" => Ok(Command::Dump {
            trace: take("--trace", &opts).ok_or("dump requires --trace")?,
            count: take("--count", &opts).map_or(Ok(0), |v| parse_num("--count", &v))?,
        }),
        other => Err(format!("unknown command {other:?}; try `rfstudy help`")),
    }
}

/// Usage text.
pub const USAGE: &str = "\
rfstudy — register-file design study simulator (HPCA'96 reproduction)

USAGE:
  rfstudy list
  rfstudy run      --bench NAME [--commits N] [--deadline-secs S]
                   [machine options]
  rfstudy trace    --bench NAME [--commits N] [--format chrome|text|summary]
                   [--window CYCLES] [--out FILE] [machine options]
  rfstudy record   --bench NAME --out FILE [--count N] [--seed N]
  rfstudy replay   --trace FILE [--commits N] [machine options]
  rfstudy check    [--bench NAME] [--width N] [--exceptions MODEL]
                   [--regs N] [--commits N] [--seed N] [--deadline-secs S]
  rfstudy model    [--bench NAME] [--width N] [--exceptions MODEL]
                   [--regs N] [--commits N] [--seed N] [--check]
                   [--format text|json] [--deadline-secs S]
  rfstudy dataflow --bench NAME [--window N] [--count N]
  rfstudy report   [--ledger FILE] [--baseline REV | --window N]
                   [--format text|markdown] [--out FILE] [--prom FILE]
                   [--check] [--max-regress-pct P] [--band-scale S]
                   [--fidelity gate|warn|off] [--profile-drift gate|warn|off]
  rfstudy profile  [--bench NAME] [--width N] [--exceptions MODEL]
                   [--regs N] [--commits N] [--seed N]
                   [--format flame|json|text] [--top N] [--out FILE]
                   [--deadline-secs S]
  rfstudy top      [--file FILE] [--ledger FILE] [--interval-ms N]
                   [--once] [--spawn]
  rfstudy store    stats|verify|compact|gc [--dir DIR]
  rfstudy timing   [--width N]
  rfstudy dump     --trace FILE [--count N]
  rfstudy help

MACHINE OPTIONS:
  --width N             issue width (default 4)
  --dq N                dispatch-queue entries (default 8 x width)
  --regs N              physical registers per class (default 2048)
  --exceptions MODEL    precise | imprecise | alpha-hybrid
  --cache ORG           perfect | lockup | lockup-free
  --sched POLICY        oldest-first | youngest-first
  --predictor KIND      bimodal | gshare | combining
  --split-queues        split the dispatch queue (extension)
  --seed N              workload / simulation seed

RUN OPTIONS:
  --deadline-secs S     wall-clock budget in seconds; an overrunning
                        simulation is cancelled cooperatively (its partial
                        statistics are discarded) and rfstudy exits 1

TRACE OPTIONS:
  --format FMT          chrome (Perfetto-loadable trace-event JSON),
                        text (per-instruction cycle timeline), or
                        summary (stall attribution + latency percentiles,
                        reconciled against the simulator statistics)
  --window CYCLES       keep only the last CYCLES cycles of per-instruction
                        detail (aggregates always cover the whole run)
  --out FILE            write the export to FILE instead of stdout

CHECK OPTIONS:
  without options, checks all nine benchmarks at widths 4 and 8, precise
  and imprecise exceptions, 2048 and 64 registers; each option pins one
  dimension. --commits defaults to the RF_COMMITS environment variable,
  or 10000. --deadline-secs bounds the wall time of the whole matrix
  (an overrunning run is cancelled and rfstudy exits 1). Exits non-zero
  if any invariant or static bound is violated.

MODEL OPTIONS:
  evaluates the static analytic model (rf-model) over the same pinnable
  matrix as `rfstudy check` — no simulation, microseconds per
  configuration. --format text (default) prints one line per
  configuration; json prints an array of estimate objects. With
  --check, every configuration is additionally simulated and the model
  prediction is compared against the measurement: exits non-zero when
  the mean absolute IPC error, any single configuration's error, or a
  register-pressure bracket leaves the accepted bands. --deadline-secs
  bounds the wall time of the --check simulation batch (overrunning
  configurations fail and rfstudy exits 1).

REPORT OPTIONS:
  reads the run-history ledger written by the `all` suite binary
  (default results/history/suite.jsonl) and compares the latest record
  against a baseline: --baseline REV pins a git-revision prefix, else
  the rolling median of the last --window comparable runs (default 5).
  Also scores the latest headline numbers against the paper-fidelity
  targets. --check exits non-zero on a perf regression beyond
  --max-regress-pct (default 10, widened per-harness by run-to-run
  noise) or a fidelity drift outside the accepted band (scaled by
  --band-scale; --fidelity warn reports drift without gating, off
  skips it). When ledger records carry rf-prof self-profiles, a
  profile-drift section tracks each span's share of suite self time
  vs the baseline window; --profile-drift gate makes out-of-band
  shifts fail the check (default warn; off skips the section).
  --prom FILE additionally writes a Prometheus text-format
  exposition of the latest record and scorecard.

PROFILE OPTIONS:
  forces the rf-prof self-profiler on, runs the check matrix (same
  pinnable dimensions as `rfstudy check`; --commits defaults to
  RF_COMMITS or 10000), and renders where the wall time went:
  --format text (default) is a table of the --top N hottest spans
  plus a coverage line, flame is collapsed-stack text every standard
  flamegraph renderer loads, json is the ledger's profile-tree
  encoding. --out FILE writes the rendering instead of stdout.
  --deadline-secs bounds the wall time of the instrumented batch
  (an overrunning run is cancelled and rfstudy exits 1).

TOP OPTIONS:
  attaches to the live telemetry stream a suite run started with
  RF_TELEMETRY=1 writes (default results/telemetry/live.jsonl; --file
  overrides) and renders an in-place terminal view: per-worker
  utilization bars, sims in flight / done / total, commits per second,
  cache hit rate, and an ETA weighted by per-harness medians from the
  run-history ledger (--ledger overrides the default
  results/history/suite.jsonl). --interval-ms sets the refresh period
  (default 500). --once renders a single frame and exits — useful in
  scripts and CI. --spawn launches the suite binary itself with
  RF_TELEMETRY=1 set and attaches to it, so a one-command live run
  needs no second terminal.

STORE OPTIONS:
  operates on the durable content-addressed run store that suite runs
  populate under RF_STORE=1 (--dir overrides the directory; default
  RF_STORE_DIR or results/store). stats prints snapshot statistics:
  live entries, records scanned, segments, bytes, torn/corrupt tails
  skipped, and the per-schema mix. verify re-reads and checksums every
  live record and exits 1 if any record fails. compact rewrites the
  store down to its latest record per digest (dropping superseded
  writes and torn tails). gc additionally drops records written under
  a stale key-schema version.

EXIT STATUS:
  0  success
  1  runtime failure (simulation error, sanitizer violation, failed
     check/report gate, store verification failure, exceeded
     --deadline-secs)
  2  usage error (unknown command or option, malformed value, a `top`
     attach to a stream file that does not exist)
";

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parses_run_with_machine_options() {
        let cmd = parse(&argv(
            "run --bench tomcatv --commits 5000 --width 8 --regs 128 \
             --exceptions imprecise --cache perfect --split-queues",
        ))
        .unwrap();
        match cmd {
            Command::Run { bench, commits, deadline_secs, machine } => {
                assert_eq!(bench, "tomcatv");
                assert_eq!(commits, 5000);
                assert_eq!(deadline_secs, None);
                assert_eq!(machine.width, 8);
                assert_eq!(machine.regs, 128);
                assert_eq!(machine.exceptions, ExceptionModel::Imprecise);
                assert_eq!(machine.cache, CacheOrg::Perfect);
                assert!(machine.split_queues);
                let config = machine.to_config();
                assert_eq!(config.dq_size(), 64);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn run_requires_bench() {
        assert!(parse(&argv("run --commits 100")).is_err());
    }

    #[test]
    fn run_parses_a_deadline_and_rejects_malformed_ones() {
        match parse(&argv("run --bench ora --deadline-secs 1.5")).unwrap() {
            Command::Run { deadline_secs, .. } => assert_eq!(deadline_secs, Some(1.5)),
            other => panic!("unexpected {other:?}"),
        }
        for bad in ["0", "-2", "nan", "inf", "abc"] {
            let err =
                parse(&argv(&format!("run --bench ora --deadline-secs {bad}"))).unwrap_err();
            assert!(err.contains("positive number of seconds"), "{bad}: {err}");
        }
    }

    #[test]
    fn parses_record_and_replay() {
        let cmd = parse(&argv("record --bench gcc1 --out /tmp/t.rft --count 42")).unwrap();
        assert_eq!(
            cmd,
            Command::Record {
                bench: "gcc1".into(),
                out: "/tmp/t.rft".into(),
                count: 42,
                seed: 1
            }
        );
        let cmd = parse(&argv("replay --trace /tmp/t.rft --regs 64")).unwrap();
        match cmd {
            Command::Replay { trace, commits, machine } => {
                assert_eq!(trace, "/tmp/t.rft");
                assert_eq!(commits, 0);
                assert_eq!(machine.regs, 64);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_dataflow_and_timing() {
        let cmd = parse(&argv("dataflow --bench ora --window 64")).unwrap();
        assert_eq!(
            cmd,
            Command::Dataflow { bench: "ora".into(), window: Some(64), count: 200_000 }
        );
        assert_eq!(parse(&argv("timing --width 8")).unwrap(), Command::Timing { width: 8 });
    }

    #[test]
    fn parses_check_with_and_without_options() {
        match parse(&argv("check")).unwrap() {
            Command::Check { pins, deadline_secs } => {
                assert_eq!(pins.bench, None);
                assert_eq!(pins.width, None);
                assert_eq!(pins.exceptions, None);
                assert_eq!(pins.regs, None);
                assert_eq!(pins.commits, None);
                assert_eq!(pins.seed, 12);
                assert_eq!(deadline_secs, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse(&argv(
            "check --bench compress --width 8 --exceptions imprecise --regs 64 \
             --commits 2000 --seed 7",
        ))
        .unwrap()
        {
            Command::Check { pins, .. } => {
                assert_eq!(pins.bench.as_deref(), Some("compress"));
                assert_eq!(pins.width, Some(8));
                assert_eq!(pins.exceptions, Some(ExceptionModel::Imprecise));
                assert_eq!(pins.regs, Some(64));
                assert_eq!(pins.commits, Some(2000));
                assert_eq!(pins.seed, 7);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("check --exceptions bogus")).is_err());
    }

    #[test]
    fn check_parses_a_deadline_and_rejects_malformed_ones() {
        match parse(&argv("check --bench ora --deadline-secs 2.5")).unwrap() {
            Command::Check { deadline_secs, .. } => assert_eq!(deadline_secs, Some(2.5)),
            other => panic!("unexpected {other:?}"),
        }
        for bad in ["0", "-2", "nan", "inf", "abc"] {
            let err = parse(&argv(&format!("check --deadline-secs {bad}"))).unwrap_err();
            assert!(err.contains("positive number of seconds"), "{bad}: {err}");
        }
    }

    #[test]
    fn parses_model_with_pins_check_and_format() {
        match parse(&argv("model")).unwrap() {
            Command::Model { pins, check, format, deadline_secs } => {
                assert_eq!(pins.bench, None);
                assert_eq!(pins.seed, 12);
                assert!(!check);
                assert_eq!(format, ModelFormat::Text);
                assert_eq!(deadline_secs, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse(&argv(
            "model --bench tomcatv --width 8 --exceptions imprecise --regs 64 \
             --commits 3000 --seed 5 --check --format json",
        ))
        .unwrap()
        {
            Command::Model { pins, check, format, .. } => {
                assert_eq!(pins.bench.as_deref(), Some("tomcatv"));
                assert_eq!(pins.width, Some(8));
                assert_eq!(pins.exceptions, Some(ExceptionModel::Imprecise));
                assert_eq!(pins.regs, Some(64));
                assert_eq!(pins.commits, Some(3000));
                assert_eq!(pins.seed, 5);
                assert!(check);
                assert_eq!(format, ModelFormat::Json);
            }
            other => panic!("unexpected {other:?}"),
        }
        let err = parse(&argv("model --format xml")).unwrap_err();
        assert!(err.contains("text or json"), "{err}");
    }

    #[test]
    fn model_parses_a_deadline_and_rejects_malformed_ones() {
        match parse(&argv("model --check --deadline-secs 4.5")).unwrap() {
            Command::Model { check, deadline_secs, .. } => {
                assert!(check);
                assert_eq!(deadline_secs, Some(4.5));
            }
            other => panic!("unexpected {other:?}"),
        }
        for bad in ["0", "-2", "nan", "inf", "abc"] {
            let err =
                parse(&argv(&format!("model --check --deadline-secs {bad}"))).unwrap_err();
            assert!(err.contains("positive number of seconds"), "{bad}: {err}");
        }
    }

    #[test]
    fn matrix_pins_expand_the_shared_check_matrix() {
        // Unpinned: the full 9 x 2 x 2 x 2 matrix, in bench-major order.
        let pins = MatrixPins {
            bench: None,
            width: None,
            exceptions: None,
            regs: None,
            commits: Some(500),
            seed: 12,
        };
        let params = pins.expand().unwrap();
        assert_eq!(params.len(), 72);
        assert!(params.iter().all(|p| p.commits == 500 && p.seed == 12));
        assert_eq!(params[0].width, 4);
        assert_eq!(params[0].regs, 2048);
        // Pinning every dimension yields exactly one configuration.
        let pinned = MatrixPins {
            bench: Some("compress".into()),
            width: Some(8),
            exceptions: Some(ExceptionModel::Imprecise),
            regs: Some(64),
            commits: Some(100),
            seed: 3,
        };
        let params = pinned.expand().unwrap();
        assert_eq!(params.len(), 1);
        assert_eq!(params[0].bench, "compress");
        assert_eq!(params[0].width, 8);
        assert_eq!(params[0].exceptions, ExceptionModel::Imprecise);
        assert_eq!(params[0].regs, 64);
        // Unknown benchmarks are rejected at expansion time.
        let bogus = MatrixPins { bench: Some("nope".into()), ..pinned };
        assert!(bogus.expand().is_err());
    }

    #[test]
    fn parses_report_with_defaults() {
        match parse(&argv("report")).unwrap() {
            Command::Report {
                ledger,
                baseline,
                window,
                format,
                out,
                prom,
                check,
                max_regress_pct,
                band_scale,
                fidelity,
                profile_drift,
            } => {
                assert_eq!(ledger, rf_obs::ledger::LEDGER_PATH);
                assert_eq!(baseline, None);
                assert_eq!(window, 5);
                assert_eq!(format, ReportFormat::Text);
                assert_eq!(out, None);
                assert_eq!(prom, None);
                assert!(!check);
                assert_eq!(max_regress_pct, 10.0);
                assert_eq!(band_scale, 1.0);
                assert_eq!(fidelity, rf_obs::trend::FidelityMode::Gate);
                assert_eq!(profile_drift, rf_obs::trend::FidelityMode::Warn);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_report_with_all_options() {
        match parse(&argv(
            "report --ledger /tmp/l.jsonl --baseline abc123 --window 9 \
             --format markdown --out /tmp/r.md --prom /tmp/r.prom --check \
             --max-regress-pct 25 --band-scale 3 --fidelity warn \
             --profile-drift gate",
        ))
        .unwrap()
        {
            Command::Report {
                ledger,
                baseline,
                window,
                format,
                out,
                prom,
                check,
                max_regress_pct,
                band_scale,
                fidelity,
                profile_drift,
            } => {
                assert_eq!(ledger, "/tmp/l.jsonl");
                assert_eq!(baseline.as_deref(), Some("abc123"));
                assert_eq!(window, 9);
                assert_eq!(format, ReportFormat::Markdown);
                assert_eq!(out.as_deref(), Some("/tmp/r.md"));
                assert_eq!(prom.as_deref(), Some("/tmp/r.prom"));
                assert!(check);
                assert_eq!(max_regress_pct, 25.0);
                assert_eq!(band_scale, 3.0);
                assert_eq!(fidelity, rf_obs::trend::FidelityMode::Warn);
                assert_eq!(profile_drift, rf_obs::trend::FidelityMode::Gate);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("report --format xml")).is_err());
        assert!(parse(&argv("report --fidelity maybe")).is_err());
        assert!(parse(&argv("report --profile-drift sometimes")).is_err());
        assert!(parse(&argv("report --window abc")).is_err());
    }

    #[test]
    fn parses_profile_with_defaults_and_pins() {
        match parse(&argv("profile")).unwrap() {
            Command::Profile { pins, format, top, out, deadline_secs } => {
                assert_eq!(pins.bench, None);
                assert_eq!(pins.width, None);
                assert_eq!(pins.exceptions, None);
                assert_eq!(pins.regs, None);
                assert_eq!(pins.commits, None);
                assert_eq!(pins.seed, 12);
                assert_eq!(format, ProfileFormat::Text);
                assert_eq!(top, 20);
                assert_eq!(out, None);
                assert_eq!(deadline_secs, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse(&argv(
            "profile --bench tomcatv --width 8 --exceptions imprecise --regs 64 \
             --commits 3000 --seed 5 --format flame --top 7 --out /tmp/p.folded",
        ))
        .unwrap()
        {
            Command::Profile { pins, format, top, out, .. } => {
                assert_eq!(pins.bench.as_deref(), Some("tomcatv"));
                assert_eq!(pins.width, Some(8));
                assert_eq!(pins.exceptions, Some(ExceptionModel::Imprecise));
                assert_eq!(pins.regs, Some(64));
                assert_eq!(pins.commits, Some(3000));
                assert_eq!(pins.seed, 5);
                assert_eq!(format, ProfileFormat::Flame);
                assert_eq!(top, 7);
                assert_eq!(out.as_deref(), Some("/tmp/p.folded"));
            }
            other => panic!("unexpected {other:?}"),
        }
        let err = parse(&argv("profile --format xml")).unwrap_err();
        assert!(err.contains("flame, json, or text"), "{err}");
    }

    #[test]
    fn profile_parses_a_deadline_and_rejects_malformed_ones() {
        match parse(&argv("profile --bench ora --deadline-secs 3.5")).unwrap() {
            Command::Profile { deadline_secs, .. } => assert_eq!(deadline_secs, Some(3.5)),
            other => panic!("unexpected {other:?}"),
        }
        for bad in ["0", "-2", "nan", "inf", "abc"] {
            let err = parse(&argv(&format!("profile --deadline-secs {bad}"))).unwrap_err();
            assert!(err.contains("positive number of seconds"), "{bad}: {err}");
        }
    }

    #[test]
    fn parses_top_with_defaults_and_options() {
        match parse(&argv("top")).unwrap() {
            Command::Top { file, ledger, interval_ms, once, spawn } => {
                assert_eq!(file, rf_obs::live::LIVE_PATH);
                assert_eq!(ledger, rf_obs::ledger::LEDGER_PATH);
                assert_eq!(interval_ms, 500);
                assert!(!once);
                assert!(!spawn);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse(&argv(
            "top --file /tmp/live.jsonl --ledger /tmp/l.jsonl --interval-ms 100 \
             --once --spawn",
        ))
        .unwrap()
        {
            Command::Top { file, ledger, interval_ms, once, spawn } => {
                assert_eq!(file, "/tmp/live.jsonl");
                assert_eq!(ledger, "/tmp/l.jsonl");
                assert_eq!(interval_ms, 100);
                assert!(once);
                assert!(spawn);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("top --interval-ms 0")).is_err());
        assert!(parse(&argv("top --interval-ms fast")).is_err());
    }

    #[test]
    fn parses_store_actions_and_rejects_junk() {
        assert_eq!(
            parse(&argv("store stats")).unwrap(),
            Command::Store { action: StoreAction::Stats, dir: None }
        );
        assert_eq!(
            parse(&argv("store verify --dir /tmp/store")).unwrap(),
            Command::Store { action: StoreAction::Verify, dir: Some("/tmp/store".into()) }
        );
        assert_eq!(
            parse(&argv("store compact")).unwrap(),
            Command::Store { action: StoreAction::Compact, dir: None }
        );
        assert_eq!(
            parse(&argv("store gc")).unwrap(),
            Command::Store { action: StoreAction::Gc, dir: None }
        );
        let err = parse(&argv("store")).unwrap_err();
        assert!(err.contains("requires an action"), "{err}");
        let err = parse(&argv("store defrag")).unwrap_err();
        assert!(err.contains("unknown store action"), "{err}");
        assert!(parse(&argv("store stats extra")).is_err());
    }

    #[test]
    fn parses_dump() {
        let cmd = parse(&argv("dump --trace x.rft --count 10")).unwrap();
        assert_eq!(cmd, Command::Dump { trace: "x.rft".into(), count: 10 });
    }

    #[test]
    fn parses_trace_with_all_options() {
        let cmd = parse(&argv(
            "trace --bench tomcatv --commits 2000 --format chrome --window 500 \
             --out /tmp/trace.json --regs 64 --exceptions imprecise",
        ))
        .unwrap();
        match cmd {
            Command::Trace { bench, commits, format, window, out, machine } => {
                assert_eq!(bench, "tomcatv");
                assert_eq!(commits, 2000);
                assert_eq!(format, TraceFormat::Chrome);
                assert_eq!(window, Some(500));
                assert_eq!(out.as_deref(), Some("/tmp/trace.json"));
                assert_eq!(machine.regs, 64);
                assert_eq!(machine.exceptions, ExceptionModel::Imprecise);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn trace_defaults_to_summary_on_stdout() {
        match parse(&argv("trace --bench ora")).unwrap() {
            Command::Trace { commits, format, window, out, .. } => {
                assert_eq!(commits, 10_000);
                assert_eq!(format, TraceFormat::Summary);
                assert_eq!(window, None);
                assert_eq!(out, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn trace_rejects_unknown_format_with_an_error() {
        let err = parse(&argv("trace --bench ora --format xml")).unwrap_err();
        assert!(err.contains("unknown trace format"), "{err}");
        assert!(err.contains("chrome, text, or summary"), "{err}");
        assert!(parse(&argv("trace --format chrome")).is_err(), "bench is required");
        assert!(parse(&argv("trace --bench ora --window abc")).is_err());
    }

    #[test]
    fn usage_lists_every_subcommand() {
        for sub in [
            "list", "run", "trace", "record", "replay", "check", "model", "dataflow",
            "report", "profile", "top", "store", "timing", "dump",
        ] {
            assert!(USAGE.contains(&format!("rfstudy {sub}")), "usage missing {sub}");
        }
    }

    #[test]
    fn rejects_junk() {
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("run --bench x --exceptions nonsense")).is_err());
        assert!(parse(&argv("run --bench x --width abc")).is_err());
        assert!(parse(&argv("run bench")).is_err());
    }

    #[test]
    fn empty_and_help_yield_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
    }
}
