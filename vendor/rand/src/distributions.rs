//! Distributions: `Standard`, `Bernoulli`, and uniform range sampling,
//! all numerically identical to rand 0.8.5.

use crate::RngCore;

/// A distribution of values of type `T`.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "standard" distribution: the full integer range, `[0, 1)` for
/// floats, and a fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<u8> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
        rng.next_u32() as u8
    }
}

impl Distribution<u16> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u16 {
        rng.next_u32() as u16
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        // rand 0.8.5: one bit from a fresh u32.
        (rng.next_u32() as i32) < 0
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53-bit multiply-based [0, 1).
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        let value = rng.next_u32() >> 8;
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// The Bernoulli distribution, via rand 0.8.5's 64-bit fixed-point
/// comparison.
#[derive(Debug, Clone, Copy)]
pub struct Bernoulli {
    p_int: u64,
}

/// Error for a probability outside `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BernoulliError;

const ALWAYS_TRUE: u64 = u64::MAX;
const SCALE: f64 = 2.0 * (1u64 << 63) as f64;

impl Bernoulli {
    /// Creates a Bernoulli distribution with success probability `p`.
    pub fn new(p: f64) -> Result<Self, BernoulliError> {
        if !(0.0..1.0).contains(&p) {
            if p == 1.0 {
                return Ok(Self { p_int: ALWAYS_TRUE });
            }
            return Err(BernoulliError);
        }
        Ok(Self { p_int: (p * SCALE) as u64 })
    }
}

impl Distribution<bool> for Bernoulli {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        if self.p_int == ALWAYS_TRUE {
            return true;
        }
        rng.next_u64() < self.p_int
    }
}

/// Uniform sampling over ranges.
pub mod uniform {
    use super::{Distribution, Standard};
    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Types that can be sampled uniformly from a range.
    pub trait SampleUniform: Sized {
        /// Samples from `[low, high)`.
        fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
        /// Samples from `[low, high]`.
        fn sample_single_inclusive<R: RngCore + ?Sized>(
            low: Self,
            high: Self,
            rng: &mut R,
        ) -> Self;
    }

    /// Range expressions usable with `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Samples one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "cannot sample empty range");
            T::sample_single(self.start, self.end, rng)
        }
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (start, end) = self.into_inner();
            assert!(start <= end, "cannot sample empty range");
            T::sample_single_inclusive(start, end, rng)
        }
    }

    // rand 0.8.5's widening-multiply rejection sampling for integers.
    // `$large` is u32 for sub-u32 types and the type itself otherwise;
    // `$wide` is the double-width type used for the widening multiply.
    macro_rules! uniform_int {
        ($ty:ty, $unsigned:ty, $large:ty, $wide:ty) => {
            impl SampleUniform for $ty {
                fn sample_single<R: RngCore + ?Sized>(
                    low: Self,
                    high: Self,
                    rng: &mut R,
                ) -> Self {
                    let range = high.wrapping_sub(low) as $unsigned as $large;
                    let zone = if (<$unsigned>::MAX as u64) <= u16::MAX as u64 {
                        let ints_to_reject = (<$large>::MAX - range + 1) % range;
                        <$large>::MAX - ints_to_reject
                    } else {
                        (range << range.leading_zeros()).wrapping_sub(1)
                    };
                    loop {
                        let v: $large = Standard.sample(rng);
                        let m = (v as $wide) * (range as $wide);
                        let (hi, lo) =
                            ((m >> <$large>::BITS) as $large, m as $large);
                        if lo <= zone {
                            return low.wrapping_add(hi as $ty);
                        }
                    }
                }

                fn sample_single_inclusive<R: RngCore + ?Sized>(
                    low: Self,
                    high: Self,
                    rng: &mut R,
                ) -> Self {
                    let range =
                        high.wrapping_sub(low).wrapping_add(1) as $unsigned as $large;
                    if range == 0 {
                        // The full integer range.
                        let v: $large = Standard.sample(rng);
                        return v as $ty;
                    }
                    let zone = if (<$unsigned>::MAX as u64) <= u16::MAX as u64 {
                        let ints_to_reject = (<$large>::MAX - range + 1) % range;
                        <$large>::MAX - ints_to_reject
                    } else {
                        (range << range.leading_zeros()).wrapping_sub(1)
                    };
                    loop {
                        let v: $large = Standard.sample(rng);
                        let m = (v as $wide) * (range as $wide);
                        let (hi, lo) =
                            ((m >> <$large>::BITS) as $large, m as $large);
                        if lo <= zone {
                            return low.wrapping_add(hi as $ty);
                        }
                    }
                }
            }
        };
    }

    uniform_int!(u8, u8, u32, u64);
    uniform_int!(u16, u16, u32, u64);
    uniform_int!(u32, u32, u32, u64);
    uniform_int!(u64, u64, u64, u128);
    uniform_int!(usize, usize, usize, u128);
    uniform_int!(i8, u8, u32, u64);
    uniform_int!(i16, u16, u32, u64);
    uniform_int!(i32, u32, u32, u64);
    uniform_int!(i64, u64, u64, u128);
    uniform_int!(isize, usize, usize, u128);

    // rand 0.8.5's float sampling: a value in [1, 2) minus one, scaled.
    macro_rules! uniform_float {
        ($ty:ty, $uty:ty, $bits_to_discard:expr, $exponent_bias:expr, $fraction_bits:expr) => {
            impl SampleUniform for $ty {
                fn sample_single<R: RngCore + ?Sized>(
                    low: Self,
                    high: Self,
                    rng: &mut R,
                ) -> Self {
                    let mut scale = high - low;
                    assert!(scale.is_finite(), "range overflow in gen_range");
                    loop {
                        let fraction: $uty = {
                            let v: $uty = Standard.sample(rng);
                            v >> $bits_to_discard
                        };
                        // into_float_with_exponent(0): a value in [1, 2).
                        let value1_2 = <$ty>::from_bits(
                            (($exponent_bias as $uty) << $fraction_bits) | fraction,
                        );
                        let value0_1 = value1_2 - 1.0;
                        let res = value0_1 * scale + low;
                        if res < high {
                            return res;
                        }
                        // Edge case (FMA rounding onto `high`): shrink the
                        // scale by one ulp, as rand's decrease_masked does.
                        scale = <$ty>::from_bits(scale.to_bits() - 1);
                    }
                }

                fn sample_single_inclusive<R: RngCore + ?Sized>(
                    low: Self,
                    high: Self,
                    rng: &mut R,
                ) -> Self {
                    // Matches rand 0.8.5: inclusive float ranges sample the
                    // scaled [0, 1] span without rejection.
                    let scale = high - low;
                    assert!(scale.is_finite(), "range overflow in gen_range");
                    let fraction: $uty = {
                        let v: $uty = Standard.sample(rng);
                        v >> $bits_to_discard
                    };
                    let value1_2 = <$ty>::from_bits(
                        (($exponent_bias as $uty) << $fraction_bits) | fraction,
                    );
                    let value0_1 = value1_2 - 1.0;
                    value0_1 * scale + low
                }
            }
        };
    }

    uniform_float!(f64, u64, 12, 1023u64, 52);
    uniform_float!(f32, u32, 9, 127u32, 23);
}

#[cfg(test)]
mod tests {
    use super::uniform::SampleUniform;
    use super::*;
    use crate::rngs::SmallRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn standard_f64_is_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_u64_covers_range() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..200 {
            seen[u64::sample_single(0, 8, &mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn inclusive_u8_hits_endpoints() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..500 {
            match rng.gen_range(3..=6u8) {
                3 => lo = true,
                6 => hi = true,
                4 | 5 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn bernoulli_rejects_invalid() {
        assert!(Bernoulli::new(-0.1).is_err());
        assert!(Bernoulli::new(1.1).is_err());
        assert!(Bernoulli::new(1.0).is_ok());
    }
}
