//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The 64-bit `SmallRng` of rand 0.8.5: xoshiro256++.
///
/// Bit-for-bit identical output to `rand::rngs::SmallRng` on 64-bit
/// platforms, including `seed_from_u64`'s SplitMix64 seed expansion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        // The lowest bits of xoshiro256++ have linear dependencies, so
        // rand uses the upper half.
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        if seed.iter().all(|&b| b == 0) {
            return Self::seed_from_u64(0);
        }
        let mut s = [0u64; 4];
        for (slot, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *slot = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        Self { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_zero_seed_falls_back_to_splitmix() {
        // rand 0.8.5 maps the all-zero seed to seed_from_u64(0) to avoid
        // the degenerate all-zero xoshiro state.
        let a = SmallRng::from_seed([0; 32]);
        let b = SmallRng::seed_from_u64(0);
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
