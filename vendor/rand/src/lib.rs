//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the subset of the rand 0.8 API the workspace uses. It
//! is wired in through `[patch.crates-io]` in the workspace root.
//!
//! The implementation is numerically identical to rand 0.8.5 for every
//! path the simulator exercises — [`rngs::SmallRng`] is xoshiro256++
//! seeded with SplitMix64 (the 64-bit `SmallRng` of rand 0.8.5), and
//! `gen_range` / `gen_bool` reproduce rand 0.8.5's widening-multiply
//! uniform sampling and fixed-point Bernoulli — so traces, simulation
//! results, and the committed `results/` reports are unchanged relative
//! to builds against the real crate.

#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;

use distributions::uniform::{SampleRange, SampleUniform};
use distributions::{Bernoulli, Distribution, Standard};

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// User-facing random value generation, as in rand 0.8.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        Bernoulli::new(p).expect("p is outside [0, 1]").sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed, expanding it with SplitMix64
    /// exactly as rand 0.8.5 does.
    fn seed_from_u64(mut state: u64) -> Self {
        const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let n = chunk.len();
            chunk.copy_from_slice(&z.to_le_bytes()[..n]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::SmallRng;

    // Reference values produced by real rand 0.8.5 (64-bit SmallRng).
    #[test]
    fn small_rng_matches_rand_085_stream() {
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(rng.next_u64(), 5987356902031041503);
        assert_eq!(rng.next_u64(), 7051070477665621255);
        assert_eq!(rng.next_u64(), 6633766593972829180);
    }

    #[test]
    fn gen_range_is_in_bounds_and_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = a.gen_range(0u64..17);
            assert!(x < 17);
            assert_eq!(x, b.gen_range(0u64..17));
        }
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(3..=6u8);
            assert!((3..=6).contains(&i));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_800..3_200).contains(&hits), "{hits}");
    }
}
