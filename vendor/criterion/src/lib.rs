//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the subset of the criterion 0.5 API the workspace's
//! benches use: `Criterion::default().sample_size(..)`, `bench_function`,
//! `benchmark_group` with `Throughput`, `Bencher::iter`/`iter_batched`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Instead of criterion's statistical analysis it runs one warm-up
//! iteration plus `sample_size` measured iterations per benchmark and
//! prints the mean wall-clock time (and throughput when configured).

#![warn(missing_docs)]

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` should size its batches. The stand-in runs one
/// routine call per setup call regardless, so this is informational.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id.into(), self.sample_size, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput recorded for each benchmark in the group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_one(id, self.criterion.sample_size, self.throughput, f);
        self
    }

    /// Finishes the group. (Groups also finish implicitly on drop.)
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; measures the timed routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with untimed per-iteration `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

fn run_one<F>(id: String, samples: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up: one untimed iteration.
    let mut warmup = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut warmup);

    let mut total = Duration::ZERO;
    for _ in 0..samples {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        total += b.elapsed;
    }
    let mean = total / samples as u32;
    let mean_s = mean.as_secs_f64();
    match throughput {
        Some(Throughput::Elements(n)) if mean_s > 0.0 => {
            println!(
                "{id}: {mean:?}/iter over {samples} samples ({:.0} elem/s)",
                n as f64 / mean_s
            );
        }
        Some(Throughput::Bytes(n)) if mean_s > 0.0 => {
            println!(
                "{id}: {mean:?}/iter over {samples} samples ({:.0} B/s)",
                n as f64 / mean_s
            );
        }
        _ => println!("{id}: {mean:?}/iter over {samples} samples"),
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
