//! The [`Strategy`] trait and the primitive strategies: ranges, tuples,
//! [`Just`], [`any`], boxing, and [`Union`].

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::distributions::{Distribution, Standard};
use rand::rngs::SmallRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of a type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the test RNG.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn gen_value(&self, rng: &mut SmallRng) -> Self::Value;

    /// Returns a strategy applying `f` to each generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy's type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { gen: Box::new(move |rng| self.gen_value(rng)) }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn gen_value(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// A type-erased strategy (the result of [`Strategy::boxed`]).
pub struct BoxedStrategy<T> {
    gen: Box<dyn Fn(&mut SmallRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut SmallRng) -> T {
        (self.gen)(rng)
    }
}

/// Picks uniformly among several boxed strategies (see `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over `arms`; each is equally likely.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut SmallRng) -> T {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].gen_value(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

/// Generates any value of `T` from rand's `Standard` distribution.
pub fn any<T>() -> Any<T>
where
    Standard: Distribution<T>,
{
    Any(PhantomData)
}

impl<T> Strategy for Any<T>
where
    Standard: Distribution<T>,
{
    type Value = T;

    fn gen_value(&self, rng: &mut SmallRng) -> T {
        rng.gen()
    }
}

impl<T> Strategy for Range<T>
where
    T: SampleUniform + PartialOrd + Clone,
    Range<T>: SampleRange<T>,
{
    type Value = T;

    fn gen_value(&self, rng: &mut SmallRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: SampleUniform + PartialOrd + Clone,
    RangeInclusive<T>: SampleRange<T>,
{
    type Value = T;

    fn gen_value(&self, rng: &mut SmallRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for;

    #[test]
    fn ranges_and_tuples_stay_in_bounds() {
        let mut rng = rng_for("strategy::bounds");
        let s = (0u8..31, 10usize..=20, 0.0f64..1.0);
        for _ in 0..500 {
            let (a, b, c) = s.gen_value(&mut rng);
            assert!(a < 31);
            assert!((10..=20).contains(&b));
            assert!((0.0..1.0).contains(&c));
        }
    }

    #[test]
    fn map_and_boxed_compose() {
        let mut rng = rng_for("strategy::map");
        let s = (0u8..4).prop_map(|x| x * 2).boxed();
        for _ in 0..100 {
            let v = s.gen_value(&mut rng);
            assert!(v % 2 == 0 && v < 8);
        }
    }

    #[test]
    fn union_uses_every_arm() {
        let mut rng = rng_for("strategy::union");
        let s = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed(), Just(3u8).boxed()]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.gen_value(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}
