//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the subset of the proptest 1.x API the workspace's
//! property tests use: `Strategy` with `prop_map`/`boxed`, range and
//! tuple strategies, `Just`, `any`, `prop::collection::vec`,
//! `prop::option::of`, `prop_oneof!`, and the `proptest!` test macro
//! (with `#![proptest_config(ProptestConfig::with_cases(N))]`).
//!
//! Semantics differ from real proptest in one deliberate way: failing
//! cases are not shrunk and regression files are not persisted — each
//! test simply runs `cases` deterministic random inputs (seeded from the
//! test's module path and name) and panics on the first failure with the
//! generated input in the message.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::Range;

    /// A strategy producing `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of values from `element` with a length sampled
    /// uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut SmallRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Option strategies (`of`).
pub mod option {
    use crate::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// A strategy producing `Option`s of an inner strategy's values.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Some` of the inner strategy's value half the time and
    /// `None` the other half.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn gen_value(&self, rng: &mut SmallRng) -> Self::Value {
            if rng.gen_bool(0.5) {
                Some(self.inner.gen_value(rng))
            } else {
                None
            }
        }
    }
}

/// Sampling strategies (`select`).
pub mod sample {
    use crate::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// A strategy that picks one of a fixed set of values.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Generates one of `options`, each equally likely.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn gen_value(&self, rng: &mut SmallRng) -> Self::Value {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

/// Everything a property test needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop` namespace (`prop::collection`, `prop::option`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Defines property tests. Each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` deterministic random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::rng_for(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for _case in 0..config.cases {
                let ($($arg,)+) = (
                    $($crate::strategy::Strategy::gen_value(&($strategy), &mut rng),)+
                );
                $body
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

/// Picks one of several strategies with equal probability. All arms are
/// boxed to a common [`strategy::BoxedStrategy`].
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
