//! Test-runner configuration and the per-test deterministic RNG.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Configuration for a `proptest!` block (the `ProptestConfig` of real
/// proptest, reduced to the fields this workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Returns a config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Returns the deterministic RNG for a test, seeded from its fully
/// qualified name so distinct tests explore distinct inputs.
pub fn rng_for(test_name: &str) -> SmallRng {
    // FNV-1a over the name; any stable hash works here.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    SmallRng::seed_from_u64(h)
}
