//! Record/replay workflow: capture a trace once, then sweep machine
//! configurations over the *identical* instruction stream — the
//! experimental methodology of the original study (ATOM-captured traces
//! replayed through many machine models).
//!
//! ```sh
//! cargo run --release --example trace_workflow [benchmark] [instructions]
//! ```

use rfstudy::core::{ExceptionModel, MachineConfig, Pipeline};
use rfstudy::workload::{spec92, trace_io, TraceGenerator, WrongPathGenerator};

fn main() -> std::io::Result<()> {
    let mut args = std::env::args().skip(1);
    let bench = args.next().unwrap_or_else(|| "su2cor".to_owned());
    let count: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(400_000);
    let profile = spec92::by_name(&bench).expect("known benchmark name");

    // 1. Record the trace to a temporary file.
    let path = std::env::temp_dir().join(format!("rfstudy_{bench}.rft"));
    {
        let mut f = std::fs::File::create(&path)?;
        let gen = TraceGenerator::new(&profile, 42);
        let n = trace_io::write_trace(&mut f, gen.take(count))?;
        let bytes = std::fs::metadata(&path)?.len();
        println!(
            "recorded {n} instructions to {} ({:.1} bytes/inst)\n",
            path.display(),
            bytes as f64 / n as f64
        );
    }

    // 2. Replay it through a grid of machines.
    println!(
        "{:>6} {:>6} {:>12} {:>10} {:>8}",
        "width", "regs", "exceptions", "commitIPC", "cycles"
    );
    for width in [4usize, 8] {
        for regs in [64usize, 128] {
            for model in [ExceptionModel::Precise, ExceptionModel::Imprecise] {
                let mut f = std::fs::File::open(&path)?;
                let insts = trace_io::read_trace(&mut f)?;
                let commits = (insts.len() as u64) * 2 / 3;
                let config = MachineConfig::new(width)
                    .dispatch_queue(width * 8)
                    .physical_regs(regs)
                    .exceptions(model);
                let mut trace = insts.into_iter();
                let mut wp = WrongPathGenerator::new(&profile, 42);
                let stats = Pipeline::new(config).run_with(&mut trace, &mut wp, commits);
                println!(
                    "{width:>6} {regs:>6} {model:>12} {:>10.2} {:>8}",
                    stats.commit_ipc(),
                    stats.cycles
                );
            }
        }
    }
    std::fs::remove_file(&path).ok();
    println!("\nEvery row consumed byte-identical instructions: differences are purely machine effects.");
    Ok(())
}
