//! Non-blocking loads under memory pressure: compare the perfect,
//! lockup-free, and lockup cache organisations on the miss-heavy
//! `tomcatv` (a single-benchmark slice of the paper's Figures 7 and 8).
//!
//! ```sh
//! cargo run --release --example memory_pressure [commits]
//! ```

use rfstudy::core::{LiveModel, MachineConfig, Pipeline};
use rfstudy::isa::RegClass;
use rfstudy::mem::CacheOrg;
use rfstudy::workload::{spec92, TraceGenerator};

fn main() {
    let commits: u64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    let profile = spec92::tomcatv();

    println!("tomcatv, 4-way issue, dq 32, 96 registers, precise exceptions\n");
    println!(
        "{:>12} {:>10} {:>8} {:>10} {:>14} {:>12}",
        "cache", "commitIPC", "miss%", "fills", "peak-in-flight", "int live90"
    );
    for org in [CacheOrg::Perfect, CacheOrg::LockupFree, CacheOrg::Lockup] {
        let config = MachineConfig::new(4)
            .dispatch_queue(32)
            .physical_regs(96)
            .cache(org);
        let mut trace = TraceGenerator::new(&profile, 1);
        let stats = Pipeline::new(config).run(&mut trace, commits);
        println!(
            "{:>12} {:>10.2} {:>8.1} {:>10} {:>14} {:>12}",
            org.to_string(),
            stats.commit_ipc(),
            100.0 * stats.cache.load_miss_rate(),
            stats.cache.fills_installed,
            stats.peak_outstanding_fills,
            stats.live_percentile(RegClass::Int, LiveModel::Precise, 90.0),
        );
    }
    println!(
        "\nReading: the lockup (blocking) cache serialises around every miss\n\
         and loses most of the machine's throughput; the inverted-MSHR\n\
         lockup-free cache overlaps misses and approaches the perfect cache,\n\
         at the cost of keeping more registers live (the paper's second\n\
         conclusion)."
    );
}
