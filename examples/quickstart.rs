//! Quickstart: simulate one benchmark on the paper's baseline 4-way
//! machine and print the headline statistics.
//!
//! ```sh
//! cargo run --release --example quickstart [benchmark] [commits]
//! ```

use rfstudy::core::{ExceptionModel, MachineConfig, Pipeline};
use rfstudy::isa::RegClass;
use rfstudy::mem::CacheOrg;
use rfstudy::workload::{spec92, TraceGenerator};

fn main() {
    let mut args = std::env::args().skip(1);
    let bench = args.next().unwrap_or_else(|| "compress".to_owned());
    let commits: u64 = args.next().and_then(|v| v.parse().ok()).unwrap_or(200_000);

    let profile = spec92::by_name(&bench).unwrap_or_else(|| {
        eprintln!("unknown benchmark {bench:?}; try one of:");
        for p in spec92::all() {
            eprintln!("  {}", p.name);
        }
        std::process::exit(1);
    });

    // The paper's baseline 4-way machine: 32-entry dispatch queue,
    // effectively unlimited (2048) registers, precise exceptions,
    // lockup-free 64 KB 2-way data cache.
    let config = MachineConfig::new(4)
        .dispatch_queue(32)
        .physical_regs(2048)
        .exceptions(ExceptionModel::Precise)
        .cache(CacheOrg::LockupFree);

    let mut trace = TraceGenerator::new(&profile, 1);
    let stats = Pipeline::new(config).run(&mut trace, commits);

    println!("benchmark            : {bench}");
    println!("committed            : {}", stats.committed);
    println!("cycles               : {}", stats.cycles);
    println!("issue IPC            : {:.2}", stats.issue_ipc());
    println!("commit IPC           : {:.2}", stats.commit_ipc());
    println!("load miss rate       : {:.1}%", 100.0 * stats.cache.load_miss_rate());
    println!("cbr mispredict rate  : {:.1}%", 100.0 * stats.mispredict_rate());
    println!("squashed (wrong path): {}", stats.squashed);
    for (class, label) in [(RegClass::Int, "int"), (RegClass::Fp, "fp ")] {
        use rfstudy::core::LiveModel;
        let p90 = stats.live_percentile(class, LiveModel::Precise, 90.0);
        let i90 = stats.live_percentile(class, LiveModel::Imprecise, 90.0);
        println!("{label} live regs (90th)  : precise {p90}, imprecise {i90}");
    }
}
