//! Design-space sweep: find the BIPS-optimal register-file size for a
//! machine, combining the simulator with the register-file timing model
//! (the paper's Figure 10 methodology as a reusable tool).
//!
//! Machine cycle time is assumed proportional to the integer register
//! file's cycle time, so growing the register file trades fewer
//! register-starvation stalls against a slower clock; the sweet spot is
//! interior.
//!
//! ```sh
//! cargo run --release --example design_sweep [width] [commits]
//! ```

use rfstudy::core::{MachineConfig, Pipeline};
use rfstudy::timing::{bips, RegFileGeometry, TimingModel};
use rfstudy::workload::{spec92, TraceGenerator};

fn main() {
    let mut args = std::env::args().skip(1);
    let width: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(4);
    let commits: u64 = args.next().and_then(|v| v.parse().ok()).unwrap_or(50_000);
    let timing = TimingModel::cmos_05um();

    println!("{width}-way issue, dq {}, averaged over all nine benchmarks\n", width * 8);
    println!("{:>6} {:>10} {:>12} {:>8}", "regs", "avg IPC", "cycle (ns)", "BIPS");
    let mut best = (0usize, 0.0f64);
    for regs in [32usize, 48, 64, 80, 96, 128, 160, 256] {
        let mut ipc_sum = 0.0;
        let profiles = spec92::all();
        for profile in &profiles {
            let config = MachineConfig::new(width)
                .dispatch_queue(width * 8)
                .physical_regs(regs);
            let mut trace = TraceGenerator::new(profile, 1);
            let stats = Pipeline::new(config).run(&mut trace, commits);
            ipc_sum += stats.commit_ipc();
        }
        let ipc = ipc_sum / profiles.len() as f64;
        let cycle = timing.cycle_time_ns(&RegFileGeometry::int_for_width(width, regs));
        let b = bips(ipc, cycle);
        if b > best.1 {
            best = (regs, b);
        }
        println!("{regs:>6} {ipc:>10.2} {cycle:>12.3} {b:>8.2}");
    }
    println!("\nBIPS-optimal register file: {} registers ({:.2} BIPS)", best.0, best.1);
}
