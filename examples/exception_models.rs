//! Compare the precise and imprecise exception models across
//! register-file sizes for one benchmark (a single-benchmark slice of the
//! paper's Figure 6).
//!
//! The imprecise model frees physical registers earlier — as soon as the
//! writer, its readers, and a branch-cleared later writer have all
//! *completed* — so it tolerates smaller register files; with plenty of
//! registers the two models converge.
//!
//! ```sh
//! cargo run --release --example exception_models [benchmark] [commits]
//! ```

use rfstudy::core::{ExceptionModel, MachineConfig, Pipeline};
use rfstudy::workload::{spec92, TraceGenerator};

fn main() {
    let mut args = std::env::args().skip(1);
    let bench = args.next().unwrap_or_else(|| "tomcatv".to_owned());
    let commits: u64 = args.next().and_then(|v| v.parse().ok()).unwrap_or(100_000);
    let profile = spec92::by_name(&bench).expect("known benchmark name");

    println!("benchmark: {bench}, 4-way issue, dq 32, lockup-free cache\n");
    println!("{:>6} {:>14} {:>14} {:>12} {:>12}", "regs", "IPC(precise)", "IPC(imprecise)", "stall%(pre)", "stall%(imp)");
    for regs in [32usize, 40, 48, 64, 80, 96, 128, 256] {
        let mut row = Vec::new();
        for model in [ExceptionModel::Precise, ExceptionModel::Imprecise] {
            let config = MachineConfig::new(4)
                .dispatch_queue(32)
                .physical_regs(regs)
                .exceptions(model);
            let mut trace = TraceGenerator::new(&profile, 1);
            let stats = Pipeline::new(config).run(&mut trace, commits);
            row.push((stats.commit_ipc(), 100.0 * stats.no_free_reg_fraction()));
        }
        println!(
            "{regs:>6} {:>14.2} {:>14.2} {:>12.1} {:>12.1}",
            row[0].0, row[1].0, row[0].1, row[1].1
        );
    }
    println!(
        "\nReading: at small sizes the imprecise model wins (earlier freeing);\n\
         both saturate once free registers are plentiful — the paper's\n\
         conclusion is that precise exceptions cost relatively few registers."
    );
}
